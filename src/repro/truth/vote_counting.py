"""Vote-count machinery shared by ACCU and DEPEN.

Terminology follows section 3.2's Bayesian sketch:

* the *accuracy score* of a source with accuracy ``A`` in a domain with
  ``n`` uniform false values per object is ``A'(S) = ln(n·A / (1-A))`` —
  the log-likelihood-ratio contribution of one vote;
* the *vote count* of a value is the sum of its providers' scores,
  optionally *discounted* for dependence: a provider's score is scaled by
  the probability its value was provided independently of providers
  already counted;
* value probabilities are the softmax of vote counts over the observed
  values of the object (the truth is assumed to be among the observed
  values, as in the paper's examples).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError, ParameterError

#: A per-object vote plan: for each value (in claim-store order), the
#: providers in decreasing-accuracy order.
VoteOrder = list[tuple[Value, list[SourceId]]]


class VoteOrderCache:
    """Caches the per-(object, value) provider orderings across rounds.

    :func:`discounted_vote_counts` walks each value's providers in
    decreasing accuracy order (ties broken lexicographically). Every
    such ordering is a projection of one *global* ranking — sources
    sorted by ``(-accuracy, source)`` — so it can only change when two
    sources swap ranks. Iterative algorithms converge precisely by their
    accuracies settling, after the first few rounds the ranking is
    static, and re-sorting every object's providers every round is
    wasted work. This cache re-sorts only when the global ranking
    actually changed; when just the dataset moved (ingest adds
    providers) it re-sorts only the objects dirty since the cached
    version, answered from the dataset's mutation log.
    """

    def __init__(self, dataset: ClaimDataset) -> None:
        self._dataset = dataset
        self._ranking: list[SourceId] | None = None
        self._version: int | None = None
        self._orders: dict[ObjectId, VoteOrder] = {}

    def orderings(
        self, accuracies: Mapping[SourceId, float]
    ) -> dict[ObjectId, VoteOrder]:
        """Per-object vote plans under the current accuracy estimates.

        Every provider in the dataset must have an accuracy (the batch
        entry points validate that before calling).
        """
        ranking = sorted(accuracies, key=lambda s: (-accuracies[s], s))
        version = self._dataset.version
        if ranking == self._ranking and version == self._version:
            return self._orders
        # Sorting by the precomputed integer rank reproduces the
        # (-accuracy, source) order exactly: the subset order of a
        # strict total order is the order of the global ranks.
        rank = {source: i for i, source in enumerate(ranking)}
        dataset = self._dataset
        if ranking == self._ranking and self._version is not None:
            # Only the dataset moved (ingest): the ranking — and with it
            # every clean object's provider ordering — is unchanged, so
            # re-sort just the objects the ingest dirtied. A mutation
            # log compacted past our sync point can no longer answer
            # the delta; fall back to the full rebuild then.
            try:
                dirty = dataset.dirty_objects_since(self._version)
            except DataError:
                dirty = None
            if dirty is not None:
                orders = self._orders
                for obj in dirty:
                    orders[obj] = [
                        (value, sorted(providers, key=rank.__getitem__))
                        for value, providers in dataset.values_for_view(
                            obj
                        ).items()
                    ]
                self._version = version
                return orders
        self._orders = {
            obj: [
                (value, sorted(providers, key=rank.__getitem__))
                for value, providers in dataset.values_for_view(obj).items()
            ]
            for obj in dataset.objects
        }
        self._ranking = ranking
        self._version = version
        return self._orders


def accuracy_score(accuracy: float, n_false_values: int) -> float:
    """``A'(S) = ln(n·A / (1-A))`` — one vote's weight.

    ``accuracy`` must be strictly inside (0, 1); iterative callers clamp
    their estimates before calling.
    """
    if not 0.0 < accuracy < 1.0:
        raise ParameterError(f"accuracy must be in (0, 1), got {accuracy}")
    if n_false_values < 1:
        raise ParameterError(f"n_false_values must be >= 1, got {n_false_values}")
    return math.log(n_false_values * accuracy / (1.0 - accuracy))


def softmax_distribution(vote_counts: dict[Value, float]) -> dict[Value, float]:
    """Turn vote counts into a probability distribution over the values.

    Numerically stable (scores are shifted by their max before
    exponentiation). An empty input yields an empty distribution.
    """
    if not vote_counts:
        return {}
    peak = max(vote_counts.values())
    weights = {value: math.exp(count - peak) for value, count in vote_counts.items()}
    total = sum(weights.values())
    return {value: weight / total for value, weight in weights.items()}


def independent_vote_counts(
    dataset: ClaimDataset,
    obj: ObjectId,
    scores: dict[SourceId, float],
) -> dict[Value, float]:
    """ACCU vote counts: each provider contributes its full score."""
    counts: dict[Value, float] = {}
    for value, providers in dataset.values_for_view(obj).items():
        counts[value] = sum(scores[source] for source in providers)
    return counts


def all_independent_vote_counts(
    dataset: ClaimDataset,
    scores: dict[SourceId, float],
) -> dict[ObjectId, dict[Value, float]]:
    """ACCU vote counts for every object in one pass (zero-copy views)."""
    _require_entries(dataset, scores, "scores")
    return {
        obj: independent_vote_counts(dataset, obj, scores)
        for obj in dataset.objects
    }


def discounted_vote_counts(
    dataset: ClaimDataset,
    obj: ObjectId,
    scores: dict[SourceId, float],
    dependence: DependenceGraph,
    copy_rate: float,
    accuracies: dict[SourceId, float],
) -> dict[Value, float]:
    """DEPEN vote counts: copied votes are counted (approximately) once.

    Providers of each value are walked in decreasing accuracy order (ties
    broken lexicographically for determinism). The first provider counts
    in full; each later provider's score is multiplied by the probability
    that it provided the value independently of every provider already
    counted — ``Π (1 - c·P(dep))`` over the counted set. Ordering by
    accuracy puts the most credible provider first, so suspected copiers
    are the ones discounted.

    Every provider of ``obj`` must have an entry in both ``accuracies``
    and ``scores``; a missing source raises
    :class:`~repro.exceptions.ParameterError` naming it (previously a
    missing accuracy silently sorted the source last and then surfaced
    as an opaque ``KeyError``).
    """
    for value, providers in dataset.values_for_view(obj).items():
        for source in providers:
            if source not in accuracies:
                raise ParameterError(
                    f"no accuracy estimate for source {source!r} "
                    f"(provider of object {obj!r})"
                )
            if source not in scores:
                raise ParameterError(
                    f"no accuracy score for source {source!r} "
                    f"(provider of object {obj!r})"
                )
    return _discounted_counts(
        dataset, obj, scores, dependence, copy_rate, accuracies
    )


def _discounted_counts(
    dataset: ClaimDataset,
    obj: ObjectId,
    scores: dict[SourceId, float],
    dependence: DependenceGraph,
    copy_rate: float,
    accuracies: dict[SourceId, float],
    ordered: VoteOrder | None = None,
) -> dict[Value, float]:
    """Unchecked kernel of :func:`discounted_vote_counts`.

    ``ordered`` supplies a precomputed vote plan (from
    :class:`VoteOrderCache`); without one the providers are sorted here.
    """
    counts: dict[Value, float] = {}
    if ordered is None:
        ordered = [
            (value, sorted(providers, key=lambda s: (-accuracies[s], s)))
            for value, providers in dataset.values_for_view(obj).items()
        ]
    for value, providers in ordered:
        counted: list[SourceId] = []
        total = 0.0
        for source in providers:
            weight = dependence.independence_weight(source, counted, copy_rate)
            total += scores[source] * weight
            counted.append(source)
        counts[value] = total
    return counts


def all_discounted_vote_counts(
    dataset: ClaimDataset,
    scores: dict[SourceId, float],
    dependence: DependenceGraph,
    copy_rate: float,
    accuracies: dict[SourceId, float],
    order_cache: VoteOrderCache | None = None,
) -> dict[ObjectId, dict[Value, float]]:
    """DEPEN vote counts for every object in one pass (zero-copy views).

    Validates the accuracy maps against the whole dataset once, then
    runs the unchecked kernel per object — the per-round hot loop pays
    no per-provider membership checks. Iterative callers pass an
    ``order_cache`` so provider orderings are re-sorted only on rounds
    where the accuracy ranking actually changed.
    """
    _require_entries(dataset, scores, "scores")
    _require_entries(dataset, accuracies, "accuracies")
    orders = None if order_cache is None else order_cache.orderings(accuracies)
    return {
        obj: _discounted_counts(
            dataset,
            obj,
            scores,
            dependence,
            copy_rate,
            accuracies,
            ordered=None if orders is None else orders[obj],
        )
        for obj in dataset.objects
    }


def _require_entries(
    dataset: ClaimDataset, mapping: dict[SourceId, float], name: str
) -> None:
    """Fail fast, naming the first dataset source missing from ``mapping``."""
    for source in dataset.sources:
        if source not in mapping:
            raise ParameterError(
                f"no entry in {name!r} for source {source!r}; every source "
                "of the dataset needs one"
            )


def decide(vote_counts: dict[Value, float]) -> Value:
    """The winning value: highest count, ties broken by value repr.

    Deterministic tie-breaking keeps experiments reproducible; the paper's
    Example 2.1 relies on recognising a three-way tie as "unsure", which
    callers can detect by comparing the top two counts.
    """
    return max(vote_counts, key=lambda value: (vote_counts[value], repr(value)))


def decisions_and_distributions(
    dataset: ClaimDataset,
    vote_counts_by_object: dict[ObjectId, dict[Value, float]],
) -> tuple[dict[ObjectId, Value], dict[ObjectId, dict[Value, float]]]:
    """Apply :func:`decide` and :func:`softmax_distribution` per object."""
    decisions: dict[ObjectId, Value] = {}
    distributions: dict[ObjectId, dict[Value, float]] = {}
    for obj in dataset.objects:
        counts = vote_counts_by_object[obj]
        decisions[obj] = decide(counts)
        distributions[obj] = softmax_distribution(counts)
    return decisions, distributions


def soft_accuracies(
    dataset: ClaimDataset,
    distributions: dict[ObjectId, dict[Value, float]],
) -> dict[SourceId, float]:
    """Re-estimate source accuracies from value probabilities.

    ``A(S)`` = mean probability that S's value is true, over the objects
    S covers — the update step of the iterative scheme.
    """
    accuracies: dict[SourceId, float] = {}
    for source in dataset.sources:
        claims = dataset.claims_by_view(source)
        mass = sum(
            distributions.get(obj, {}).get(claim.value, 0.0)
            for obj, claim in claims.items()
        )
        accuracies[source] = mass / len(claims) if claims else 0.0
    return accuracies
