"""Truth discovery: naive voting, ACCU, TruthFinder, and copy-aware DEPEN."""

from repro.truth.accu import Accu
from repro.truth.base import RoundTrace, TruthDiscovery, TruthResult
from repro.truth.columnar import (
    TruthRoundEngine,
    ValueProbTable,
    resolve_truth_backend,
)
from repro.truth.depen import Depen
from repro.truth.similarity import SimilarityMatrix, similarity_adjusted_counts
from repro.truth.truthfinder import TruthFinder
from repro.truth.voting import NaiveVote

__all__ = [
    "Accu",
    "Depen",
    "NaiveVote",
    "RoundTrace",
    "SimilarityMatrix",
    "TruthDiscovery",
    "TruthFinder",
    "TruthResult",
    "TruthRoundEngine",
    "ValueProbTable",
    "resolve_truth_backend",
    "similarity_adjusted_counts",
]
