"""Value-similarity extension (ACCUSIM): votes flow between similar values.

Section 4's record-linkage discussion observes that "the boundary between
a wrong value and an alternative representation is often vague"
("Luna Dong" vs "Xin Dong" vs "Xing Dong"). Before representations are
fully resolved, a softer mechanism helps: let a value inherit part of the
vote mass of *similar* values, so near-duplicate representations support
rather than split each other.

The adjusted vote count is::

    C*(v) = C(v) + rho · Σ_{v' ≠ v} sim(v, v') · C(v')

with ``rho ∈ [0, 1]`` controlling how much support similarity carries and
``sim`` a caller-supplied symmetric similarity in [0, 1] (the linkage
layer provides ready-made ones for strings and author lists).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.types import Value
from repro.exceptions import ParameterError

SimilarityFn = Callable[[Value, Value], float]


def similarity_adjusted_counts(
    vote_counts: dict[Value, float],
    similarity: SimilarityFn,
    rho: float = 0.5,
) -> dict[Value, float]:
    """Blend vote counts across similar values (the ACCUSIM adjustment).

    Only non-negative similarity contributions are accepted; a similarity
    function returning values outside [0, 1] is a caller bug and raises
    :class:`~repro.exceptions.ParameterError`.
    """
    if not 0.0 <= rho <= 1.0:
        raise ParameterError(f"rho must be in [0, 1], got {rho}")
    values = list(vote_counts)
    adjusted: dict[Value, float] = {}
    for value in values:
        bonus = 0.0
        for other in values:
            if other == value:
                continue
            sim = similarity(value, other)
            if not 0.0 <= sim <= 1.0:
                raise ParameterError(
                    f"similarity({value!r}, {other!r}) = {sim}, must be in [0, 1]"
                )
            bonus += sim * vote_counts[other]
        adjusted[value] = vote_counts[value] + rho * bonus
    return adjusted


class SimilarityMatrix:
    """Precomputed pairwise similarities, usable as a :data:`SimilarityFn`.

    Computing string similarity inside the iteration loop is wasteful —
    the candidate values of an object do not change between rounds. This
    helper memoises the full matrix once.
    """

    def __init__(self, values: list[Value], similarity: SimilarityFn) -> None:
        self._matrix: dict[tuple[Value, Value], float] = {}
        for i, v1 in enumerate(values):
            for v2 in values[i + 1 :]:
                sim = similarity(v1, v2)
                if not 0.0 <= sim <= 1.0:
                    raise ParameterError(
                        f"similarity({v1!r}, {v2!r}) = {sim}, must be in [0, 1]"
                    )
                self._matrix[(v1, v2)] = sim
                self._matrix[(v2, v1)] = sim

    def __call__(self, v1: Value, v2: Value) -> float:
        if v1 == v2:
            return 1.0
        return self._matrix.get((v1, v2), 0.0)
