"""TruthFinder-style baseline: trust-confidence fixpoint, no copy model.

A second independent-sources baseline (beyond ACCU) for the benchmark
tables. It follows the classic web-fact-finding recipe:

* source trustworthiness ``t(s)`` = mean confidence of the values it
  provides;
* value confidence combines its providers' trust in log space:
  ``σ(v) = -Σ ln(1 - t(s))`` over providers, squashed back through
  ``1 / (1 + e^{-γ σ})``;
* a damping factor keeps ``t`` away from 1 so the fixpoint is finite.

Like ACCU it rewards accurate sources; unlike DEPEN it will happily let a
clique of copiers inflate a false value's confidence, which is exactly
the contrast the benchmarks display.
"""

from __future__ import annotations

import math

from repro.core.dataset import ClaimDataset
from repro.core.params import IterationParams
from repro.core.types import ObjectId, Value
from repro.exceptions import ConvergenceError, ParameterError
from repro.truth.base import RoundTrace, TruthDiscovery, TruthResult


class TruthFinder(TruthDiscovery):
    """Trust/confidence fixpoint truth discovery (independence assumed)."""

    name = "truthfinder"

    def __init__(
        self,
        gamma: float = 0.3,
        damping: float = 0.99,
        iteration: IterationParams | None = None,
    ) -> None:
        if gamma <= 0:
            raise ParameterError(f"gamma must be > 0, got {gamma}")
        if not 0.0 < damping < 1.0:
            raise ParameterError(f"damping must be in (0, 1), got {damping}")
        self.gamma = gamma
        self.damping = damping
        self.iteration = iteration or IterationParams()

    def discover(self, dataset: ClaimDataset) -> TruthResult:
        self._check_dataset(dataset)
        it = self.iteration
        trust = {s: it.initial_accuracy for s in dataset.sources}
        confidences: dict[ObjectId, dict[Value, float]] = {}
        trace: list[RoundTrace] = []
        decisions: dict[ObjectId, Value] = {}
        converged = False
        rounds = 0

        for rounds in range(1, it.max_rounds + 1):
            confidences = {}
            for obj in dataset.objects:
                scores: dict[Value, float] = {}
                for value, providers in dataset.values_for(obj).items():
                    raw = -sum(
                        math.log(max(1e-12, 1.0 - self.damping * trust[s]))
                        for s in providers
                    )
                    scores[value] = 1.0 / (1.0 + math.exp(-self.gamma * raw))
                confidences[obj] = scores

            new_trust = {}
            for source in dataset.sources:
                claims = dataset.claims_by(source)
                new_trust[source] = sum(
                    confidences[obj][claim.value] for obj, claim in claims.items()
                ) / len(claims)

            new_decisions = {
                obj: max(scores, key=lambda v: (scores[v], repr(v)))
                for obj, scores in confidences.items()
            }
            changed = sum(
                1 for obj, v in new_decisions.items() if decisions.get(obj) != v
            )
            movement = max(abs(new_trust[s] - trust[s]) for s in new_trust)
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                )
            )
            trust, decisions = new_trust, new_decisions
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )

        distributions = {
            obj: _normalise(scores) for obj, scores in confidences.items()
        }
        return TruthResult(
            decisions=decisions,
            distributions=distributions,
            accuracies=trust,
            rounds=rounds,
            converged=converged,
            trace=trace,
        )


def _normalise(scores: dict[Value, float]) -> dict[Value, float]:
    total = sum(scores.values())
    if total <= 0:
        share = 1.0 / len(scores)
        return {value: share for value in scores}
    return {value: score / total for value, score in scores.items()}
