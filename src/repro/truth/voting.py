"""Naive voting — the strawman baseline of section 2.2.

"Simply using the information that is asserted by the largest number of
data sources is clearly inadequate since biased (and even malicious)
sources abound, and plagiarism between sources may be widespread."

We implement it anyway: it is the baseline every experiment compares
against (Examples 2.1 and 2.2 are both built on its failure mode).
"""

from __future__ import annotations

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, Value
from repro.truth.base import TruthDiscovery, TruthResult
from repro.truth.vote_counting import decide


class NaiveVote(TruthDiscovery):
    """Majority voting: the most-asserted value wins; ties break deterministically.

    The per-object distribution is the normalised vote share, which is
    what "combine the probabilities by assuming that the sources are
    independent" (section 1) degenerates to when sources attach no
    probabilities.
    """

    name = "vote"

    def discover(self, dataset: ClaimDataset) -> TruthResult:
        self._check_dataset(dataset)
        decisions: dict[ObjectId, Value] = {}
        distributions: dict[ObjectId, dict[Value, float]] = {}
        for obj in dataset.objects:
            counts = {
                value: float(len(providers))
                for value, providers in dataset.values_for(obj).items()
            }
            decisions[obj] = decide(counts)
            total = sum(counts.values())
            distributions[obj] = {
                value: count / total for value, count in counts.items()
            }
        return TruthResult(decisions=decisions, distributions=distributions)

    def is_unsure(self, dataset: ClaimDataset, obj: ObjectId) -> bool:
        """Whether the vote for ``obj`` is tied at the top.

        Example 2.1 calls the three-way tie on Dong's affiliation
        "unsure"; this predicate makes that state observable rather than
        hidden behind deterministic tie-breaking.
        """
        counts = [len(p) for p in dataset.values_for(obj).values()]
        if not counts:
            return True
        top = max(counts)
        return counts.count(top) > 1
