"""Common interface and result types for truth-discovery algorithms.

Every algorithm (naive voting, ACCU, TruthFinder, DEPEN) implements
:class:`TruthDiscovery` and returns a :class:`TruthResult`, so baselines
and the copy-aware method are interchangeable in experiments —
exactly the comparison the paper's Example 2.1 sets up.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class RoundTrace:
    """Diagnostics for one round of an iterative algorithm.

    ``pairs_rescored`` / ``pairs_reused`` count how the round's
    dependence step treated the candidate pairs: recomputed the
    posterior, or carried the previous round's over because nothing the
    posterior depends on moved (DEPEN's restricted re-scoring, columnar
    truth backend only). ``None`` on algorithms and backends that score
    every pair unconditionally — the counters are execution diagnostics,
    never part of the result equivalence.
    """

    round_index: int
    accuracy_change: float
    decisions_changed: int
    pairs_rescored: int | None = None
    pairs_reused: int | None = None


@dataclass
class TruthResult:
    """The output of a truth-discovery run.

    ``decisions``
        The chosen value per object.
    ``distributions``
        The full probability distribution over observed values per object
        (sums to 1 per object) — the probabilistic-database output the
        paper's data-fusion section asks for.
    ``accuracies``
        Final per-source accuracy estimates (empty for naive voting).
    ``dependence``
        The final dependence graph, for algorithms that estimate one.
    ``rounds`` / ``converged`` / ``trace``
        Iteration diagnostics.
    """

    decisions: dict[ObjectId, Value]
    distributions: dict[ObjectId, dict[Value, float]]
    accuracies: dict[SourceId, float] = field(default_factory=dict)
    dependence: object | None = None
    rounds: int = 0
    converged: bool = True
    trace: list[RoundTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        for obj, dist in self.distributions.items():
            total = sum(dist.values())
            if dist and not 0.999 <= total <= 1.001:
                raise DataError(
                    f"distribution for {obj!r} sums to {total}, expected 1"
                )

    def probability(self, obj: ObjectId, value: Value) -> float:
        """Posterior probability that ``value`` is the truth for ``obj``."""
        return self.distributions.get(obj, {}).get(value, 0.0)

    def confidence(self, obj: ObjectId) -> float:
        """Probability of the chosen value for ``obj``."""
        if obj not in self.decisions:
            raise DataError(f"no decision recorded for object {obj!r}")
        return self.probability(obj, self.decisions[obj])

    def accuracy_against(self, truth: dict[ObjectId, Value]) -> float:
        """Fraction of ``truth``'s objects this result decided correctly.

        Objects without a decision count as wrong (the algorithm saw no
        claims for them).
        """
        if not truth:
            raise DataError("ground truth must not be empty")
        correct = sum(
            1 for obj, value in truth.items() if self.decisions.get(obj) == value
        )
        return correct / len(truth)


class TruthDiscovery(ABC):
    """Interface all truth-discovery algorithms implement."""

    #: Human-readable algorithm name, used in benchmark tables.
    name: str = "base"

    @abstractmethod
    def discover(self, dataset: ClaimDataset) -> TruthResult:
        """Run the algorithm on a snapshot dataset and return its result."""

    def _check_dataset(self, dataset: ClaimDataset) -> None:
        if len(dataset) == 0:
            raise DataError(f"{self.name}: dataset is empty")
