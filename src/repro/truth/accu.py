"""ACCU: accuracy-weighted Bayesian truth discovery, no dependence model.

The intermediate baseline between naive voting and the copy-aware DEPEN:
it knows sources differ in accuracy (section 3.1's "different coverage
and expertise") and iterates between truth probabilities and accuracy
estimates, but still assumes all sources are independent — so a copier
clique still out-votes an accurate loner.
"""

from __future__ import annotations

from repro.core.dataset import ClaimDataset
from repro.core.params import IterationParams
from repro.exceptions import ConvergenceError
from repro.truth.base import RoundTrace, TruthDiscovery, TruthResult
from repro.truth.vote_counting import (
    accuracy_score,
    all_independent_vote_counts,
    decisions_and_distributions,
    soft_accuracies,
)


class Accu(TruthDiscovery):
    """Iterative accuracy-weighted voting (independence assumed).

    Parameters
    ----------
    n_false_values:
        The ``n`` of the Bayesian model — how many uniform false
        alternatives each object has.
    iteration:
        Convergence controls; see :class:`~repro.core.params.IterationParams`.
    """

    name = "accu"

    def __init__(
        self,
        n_false_values: int = 100,
        iteration: IterationParams | None = None,
    ) -> None:
        self.n_false_values = n_false_values
        self.iteration = iteration or IterationParams()

    def discover(self, dataset: ClaimDataset) -> TruthResult:
        self._check_dataset(dataset)
        it = self.iteration
        accuracies = {s: it.initial_accuracy for s in dataset.sources}
        decisions: dict = {}
        trace: list[RoundTrace] = []
        converged = False
        rounds = 0
        distributions: dict = {}

        for rounds in range(1, it.max_rounds + 1):
            scores = {
                s: accuracy_score(it.clamp_accuracy(a), self.n_false_values)
                for s, a in accuracies.items()
            }
            counts = all_independent_vote_counts(dataset, scores)
            new_decisions, distributions = decisions_and_distributions(
                dataset, counts
            )
            new_accuracies = soft_accuracies(dataset, distributions)

            changed = sum(
                1
                for obj, value in new_decisions.items()
                if decisions.get(obj) != value
            )
            movement = max(
                abs(new_accuracies[s] - accuracies[s]) for s in new_accuracies
            )
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                )
            )
            decisions, accuracies = new_decisions, new_accuracies
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )
        return TruthResult(
            decisions=decisions,
            distributions=distributions,
            accuracies=accuracies,
            rounds=rounds,
            converged=converged,
            trace=trace,
        )
