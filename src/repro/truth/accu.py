"""ACCU: accuracy-weighted Bayesian truth discovery, no dependence model.

The intermediate baseline between naive voting and the copy-aware DEPEN:
it knows sources differ in accuracy (section 3.1's "different coverage
and expertise") and iterates between truth probabilities and accuracy
estimates, but still assumes all sources are independent — so a copier
clique still out-votes an accurate loner.
"""

from __future__ import annotations

import warnings

from repro.core.dataset import ClaimDataset
from repro.core.params import TRUTH_BACKENDS, IterationParams
from repro.exceptions import ConvergenceError, ParameterError
from repro.truth.base import RoundTrace, TruthDiscovery, TruthResult
from repro.truth.columnar import TruthRoundEngine, resolve_truth_backend
from repro.truth.vote_counting import (
    accuracy_score,
    all_independent_vote_counts,
    decisions_and_distributions,
    soft_accuracies,
)


class Accu(TruthDiscovery):
    """Iterative accuracy-weighted voting (independence assumed).

    Parameters
    ----------
    n_false_values:
        The ``n`` of the Bayesian model — how many uniform false
        alternatives each object has.
    iteration:
        Convergence controls; see :class:`~repro.core.params.IterationParams`.
    truth_backend:
        How the rounds are executed — ``"auto"`` (columnar array
        kernels when numpy is importable, honouring the
        ``REPRO_TRUTH_BACKEND`` environment override), ``"columnar"``
        or ``"dict"``. Pure execution policy: both backends produce
        bit-for-bit identical results
        (:mod:`repro.truth.columnar`).
    """

    name = "accu"

    def __init__(
        self,
        n_false_values: int = 100,
        iteration: IterationParams | None = None,
        truth_backend: str = "auto",
        backend: str | None = None,
    ) -> None:
        if backend is not None:
            # Pre-facade spelling; kept as a warning shim one release.
            warnings.warn(
                "Accu(backend=...) is deprecated; spell it "
                "Accu(truth_backend=...) — or set it once on "
                "repro.Session(truth_backend=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            truth_backend = backend
        if truth_backend not in TRUTH_BACKENDS:
            raise ParameterError(
                "truth_backend must be 'auto', 'columnar' or 'dict', got "
                f"{truth_backend!r}"
            )
        self.n_false_values = n_false_values
        self.iteration = iteration or IterationParams()
        self.truth_backend = truth_backend

    def discover(self, dataset: ClaimDataset) -> TruthResult:
        self._check_dataset(dataset)
        backend = resolve_truth_backend(self.truth_backend, consult_env=True)
        if backend == "columnar":
            return self._discover_columnar(dataset)
        it = self.iteration
        accuracies = {s: it.initial_accuracy for s in dataset.sources}
        decisions: dict = {}
        trace: list[RoundTrace] = []
        converged = False
        rounds = 0
        distributions: dict = {}

        for rounds in range(1, it.max_rounds + 1):
            scores = {
                s: accuracy_score(it.clamp_accuracy(a), self.n_false_values)
                for s, a in accuracies.items()
            }
            counts = all_independent_vote_counts(dataset, scores)
            new_decisions, distributions = decisions_and_distributions(
                dataset, counts
            )
            new_accuracies = soft_accuracies(dataset, distributions)

            changed = sum(
                1
                for obj, value in new_decisions.items()
                if decisions.get(obj) != value
            )
            movement = max(
                abs(new_accuracies[s] - accuracies[s]) for s in new_accuracies
            )
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                )
            )
            decisions, accuracies = new_decisions, new_accuracies
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )
        return TruthResult(
            decisions=decisions,
            distributions=distributions,
            accuracies=accuracies,
            rounds=rounds,
            converged=converged,
            trace=trace,
        )

    def _discover_columnar(self, dataset: ClaimDataset) -> TruthResult:
        """The same loop as the dict path, as array kernels.

        One vectorised clamp plus a single batched log pass produce the
        accuracy scores, vote counts are one segment sum, decisions and
        distributions per-object segment reductions, and the accuracy
        update a gather plus per-source segment mean — all bit-for-bit
        equal to the dict walk (:mod:`repro.truth.columnar`).
        """
        import numpy as np

        it = self.iteration
        engine = TruthRoundEngine(dataset)
        accuracies = np.full(
            engine.n_sources, it.initial_accuracy, dtype=np.float64
        )
        winners = None
        probs = None
        trace: list[RoundTrace] = []
        converged = False
        rounds = 0
        for rounds in range(1, it.max_rounds + 1):
            clamped = engine.clamp(
                accuracies, it.accuracy_floor, it.accuracy_ceiling
            )
            scores = engine.scores(clamped, self.n_false_values)
            counts = engine.accu_counts(scores)
            new_winners, probs = engine.decide_and_distributions(counts)
            new_accuracies = engine.soft_accuracies(probs)
            changed = (
                engine.n_objects
                if winners is None
                else int(np.count_nonzero(new_winners != winners))
            )
            movement = float(np.max(np.abs(new_accuracies - accuracies)))
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                )
            )
            winners = new_winners
            accuracies = new_accuracies
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )
        return TruthResult(
            decisions=engine.decisions_dict(winners),
            distributions=engine.distributions_dict(probs),
            accuracies=engine.accuracies_dict(accuracies),
            rounds=rounds,
            converged=converged,
            trace=trace,
        )
