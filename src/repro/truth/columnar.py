"""Array-native truth rounds: the columnar backend of ACCU and DEPEN.

PRs 1-4 vectorised the *dependence* half of the iterative loop (batch
pair evidence, the sharded sweep, the columnar entry store). This module
closes the other half: section 3.2's round steps — vote counting,
softmax truth decisions, accuracy re-estimation — as numpy kernels over
flat per-object claim segments, plus the exchange format that lets the
evidence engine read truth probabilities positionally instead of probing
``{object: {value: p}}`` dicts per entry.

Two classes:

:class:`ValueProbTable` — the exchange format. Every *(object, observed
value)* pair of the dataset is one **slot** of a flat ``float64``
probability array; slots are grouped into per-object segments (CSR
bounds over the sorted object list), in each object's value-registration
order — the same first-encounter interning discipline the evidence
engine's entry table uses, extended from agreement values to every
observed claim. :meth:`~ValueProbTable.set_probs` swaps in a new
probability array and computes the **moved-slot mask** (entries whose
probability changed beyond a tolerance), which is what lets DEPEN's
iterative rounds re-score only the pairs an update actually touched.

:class:`TruthRoundEngine` — the vectorised kernels for the four round
steps, sharing the table's slot universe:

1. *vote counts* — ACCU is one ``np.bincount`` of per-claim scores into
   slots; DEPEN additionally discounts copied votes: claims are sorted
   by ``(slot, accuracy rank)`` (the argsort reuses
   :class:`~repro.truth.vote_counting.VoteOrderCache`'s insight — every
   per-value provider ordering is a projection of one global ranking,
   so the sort is recomputed only when the ranking changes) and the
   cumulative independence-weight product is applied lag by lag over
   the grouped arrays, in exactly the reference walk's order;
2. *decisions* — per-object segment max with the reference tie-break;
3. *distributions* — segment softmax (max-shift, exponentiate, segment
   sum, divide);
4. *accuracies* — one gather of each claim's probability plus a
   per-source segment mean.

Bitwise discipline
------------------

The dict path stays the equivalence reference, and the kernels are built
so results are **bit-for-bit identical** to it, not merely close:

* every sum runs through ``np.bincount``, which accumulates weights
  sequentially in input order (the PR 4 entry-store fact), with the
  input arrays laid out in the dict path's own iteration order;
* the DEPEN discount multiplies its factors in the reference order
  (earliest counted provider first), one lag per pass;
* ``exp``/``log`` are evaluated with :func:`math.exp`/:func:`math.log`
  element-wise (:func:`_exact_unary`) rather than ``np.exp``/``np.log``:
  numpy's SIMD transcendental kernels diverge from the scalar libm by
  1 ULP on a measurable fraction of inputs (~5% for ``exp``, ~0.1% for
  ``log`` on numpy 2.4), which would silently break the bitwise
  guarantee — and with it the deterministic tie-breaking the
  reproduction's experiments rely on. The heavy loops (discount
  products, gathers, segment sums) stay fully vectorised; the
  transcendentals touch only the small per-slot/per-source arrays.
"""

from __future__ import annotations

import itertools
import math
import os
from collections.abc import Mapping

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

from repro.core.dataset import ClaimDataset
from repro.core.params import TRUTH_BACKENDS
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError, ParameterError

#: Environment variable consulted by :func:`resolve_truth_backend` for
#: callers without a :class:`~repro.core.params.DependenceParams` (the
#: params class applies it through its own env-override hook instead).
TRUTH_BACKEND_ENV = "REPRO_TRUTH_BACKEND"

_table_uids = itertools.count()


def resolve_truth_backend(setting: str, *, consult_env: bool = False) -> str:
    """Resolve a ``truth_backend`` setting to ``"columnar"`` or ``"dict"``.

    ``"auto"`` picks columnar when numpy is importable and falls back to
    the dict path otherwise; an explicit ``"columnar"`` without numpy is
    an error (mirroring ``entry_store="columnar"``). With
    ``consult_env=True`` an ``"auto"`` setting first defers to the
    ``REPRO_TRUTH_BACKEND`` environment variable — the hook for callers
    that do not take :class:`~repro.core.params.DependenceParams`
    (:class:`~repro.truth.accu.Accu`), whose params-based peers get the
    same behaviour from the params env-override machinery.
    """
    if consult_env and setting == "auto":
        env = os.environ.get(TRUTH_BACKEND_ENV)
        if env:
            setting = env
    if setting not in TRUTH_BACKENDS:
        raise ParameterError(
            "truth_backend must be 'auto', 'columnar' or 'dict', got "
            f"{setting!r}"
        )
    if setting == "auto":
        return "columnar" if np is not None else "dict"
    if setting == "columnar" and np is None:
        raise ParameterError(
            "truth_backend='columnar' needs numpy for its array kernels; "
            "install numpy or use truth_backend='dict'"
        )
    return setting


def _exact_unary(fn, arr):
    """Map a scalar libm function over a float64 array, element-wise.

    Used for ``exp``/``log`` where numpy's SIMD kernels are not bitwise
    equal to :mod:`math` (see the module docstring); the arrays involved
    are the small per-slot/per-source ones, so the Python-level map is
    not a hot path.
    """
    return np.fromiter(map(fn, arr.tolist()), dtype=np.float64, count=arr.size)


class ValueProbTable:
    """Columnar value-probability exchange: one slot per (object, value).

    Parameters
    ----------
    dataset:
        The claim store; the table snapshots its *structure* (objects,
        observed values, provider counts) at construction and records
        ``dataset.version``. Consumers refuse a table whose version no
        longer matches — ingest means rebuilding the table.
    value_probs:
        Initial probabilities as the classic nested dict; ``None``
        initialises the truth-agnostic uniform distribution (each of an
        object's observed values equally likely), bit-for-bit equal to
        :func:`~repro.dependence.bayes.uniform_value_probabilities`.

    Layout: ``probs[slot]`` is the probability of slot ``slot``;
    ``bounds[row] : bounds[row + 1]`` is the slot segment of the
    ``row``-th object of the sorted object list; within a segment slots
    follow the object's value-registration order (the by-object index's
    insertion order — the same order the evidence engine's per-object
    value lists use, which is what keeps the empirical model's
    ``k_false`` accumulation bitwise identical across layouts).
    ``counts[slot]`` is the slot's provider count.
    """

    __slots__ = (
        "dataset",
        "dataset_version",
        "uid",
        "objects",
        "bounds",
        "row_of_slot",
        "slot_values",
        "counts",
        "probs",
        "moved",
        "version",
        "_slot_of",
    )

    def __init__(
        self,
        dataset: ClaimDataset,
        value_probs: Mapping[ObjectId, Mapping[Value, float]] | None = None,
    ) -> None:
        if np is None:  # pragma: no cover - numpy ships with the toolchain
            raise ParameterError(
                "ValueProbTable needs numpy for its packed arrays; "
                "install numpy or use the dict exchange format"
            )
        self.dataset = dataset
        self.dataset_version = dataset.version
        self.uid = next(_table_uids)
        self.objects: list[ObjectId] = dataset.objects
        slot_values: list[Value] = []
        counts: list[int] = []
        bounds = [0]
        slot_of: dict[ObjectId, dict[Value, int]] = {}
        probs: list[float] = []
        for obj in self.objects:
            values = dataset.values_for_view(obj)
            local: dict[Value, int] = {}
            if value_probs is None:
                share = 1.0 / len(values)
                for value, providers in values.items():
                    local[value] = len(slot_values)
                    slot_values.append(value)
                    counts.append(len(providers))
                    probs.append(share)
            else:
                obj_probs = value_probs.get(obj, {})
                for value, providers in values.items():
                    local[value] = len(slot_values)
                    slot_values.append(value)
                    counts.append(len(providers))
                    probs.append(obj_probs.get(value, 0.0))
            slot_of[obj] = local
            bounds.append(len(slot_values))
        self.slot_values = slot_values
        self.counts = np.asarray(counts, dtype=np.float64)
        self.bounds = np.asarray(bounds, dtype=np.int64)
        row_of_slot = np.empty(len(slot_values), dtype=np.int64)
        for row in range(len(self.objects)):
            row_of_slot[bounds[row] : bounds[row + 1]] = row
        self.row_of_slot = row_of_slot
        self.probs = np.asarray(probs, dtype=np.float64)
        # Nothing has been exchanged yet: every slot counts as moved, so
        # a first consumer of the mask re-scores everything.
        self.moved = np.ones(len(slot_values), dtype=bool)
        self.version = 0
        self._slot_of = slot_of

    def __len__(self) -> int:
        return len(self.slot_values)

    def slot(self, obj: ObjectId, value: Value) -> int:
        """The slot id of one (object, value); raises if unknown."""
        try:
            return self._slot_of[obj][value]
        except KeyError:
            raise DataError(
                f"({obj!r}, {value!r}) is not an observed claim of the "
                "table's dataset snapshot — rebuild the table after ingest"
            ) from None

    def set_probs(self, probs, tolerance: float = 0.0) -> None:
        """Swap in a new probability array; recompute the moved mask.

        ``probs`` must be slot-aligned with the table. The mask marks
        slots whose probability differs from the previous round's by
        more than ``tolerance`` — with the 0.0 default, any bitwise
        change counts (``!=``), which is what exact consumers need.
        """
        new = np.ascontiguousarray(probs, dtype=np.float64)
        if new.shape != self.probs.shape:
            raise DataError(
                f"probability array has {new.size} slots, table has "
                f"{self.probs.size}"
            )
        if tolerance < 0.0:
            raise ParameterError(
                f"tolerance must be >= 0, got {tolerance}"
            )
        if tolerance == 0.0:
            self.moved = new != self.probs
        else:
            self.moved = np.abs(new - self.probs) > tolerance
        self.probs = new
        self.version += 1

    def freeze(self) -> dict:
        """Copy-on-write freeze of the table's current state for publication.

        Returns the arrays a :class:`~repro.serve.snapshot.Snapshot`
        needs, all marked read-only. The structural arrays (``bounds``,
        ``counts``, ``row_of_slot``) are never written in place after
        construction, so they are shared zero-copy and locked in place —
        an accidental in-place write anywhere would raise from then on.
        ``probs`` *is* replaced each round (:meth:`set_probs` swaps the
        whole array rather than mutating, which is what makes the freeze
        safe), but the incoming array may alias a producer's buffer, so
        the frozen copy is materialised once per publish.
        """
        probs = self.probs.copy()
        probs.flags.writeable = False
        for arr in (self.bounds, self.counts, self.row_of_slot):
            arr.flags.writeable = False
        return {
            "objects": tuple(self.objects),
            "slot_values": tuple(self.slot_values),
            "bounds": self.bounds,
            "counts": self.counts,
            "row_of_slot": self.row_of_slot,
            "probs": probs,
            "dataset_version": self.dataset_version,
        }

    def moved_objects(self) -> set[ObjectId]:
        """Objects owning at least one moved slot (diagnostics)."""
        rows = np.unique(self.row_of_slot[self.moved])
        return {self.objects[row] for row in rows.tolist()}

    def to_dict(self) -> dict[ObjectId, dict[Value, float]]:
        """Materialise the classic nested-dict value probabilities."""
        probs = self.probs.tolist()
        bounds = self.bounds.tolist()
        out: dict[ObjectId, dict[Value, float]] = {}
        for row, obj in enumerate(self.objects):
            lo, hi = bounds[row], bounds[row + 1]
            out[obj] = dict(zip(self.slot_values[lo:hi], probs[lo:hi]))
        return out


class TruthRoundEngine:
    """Vectorised kernels for one ACCU/DEPEN truth round.

    Owns the flat claim arrays over a :class:`ValueProbTable`'s slot
    universe, in the two iteration orders the dict path's accumulations
    follow (see each kernel), plus the rank-sorted claim permutation the
    DEPEN discount needs — cached and recomputed only when the global
    accuracy ranking changes, exactly like
    :class:`~repro.truth.vote_counting.VoteOrderCache`.
    """

    def __init__(
        self, dataset: ClaimDataset, table: ValueProbTable | None = None
    ) -> None:
        if table is None:
            table = ValueProbTable(dataset)
        elif table.dataset is not dataset:
            raise DataError(
                "value-probability table is bound to a different dataset"
            )
        self.dataset = dataset
        self.dataset_version = dataset.version
        self.table = table
        self.sources: list[SourceId] = dataset.sources
        src_code = {source: i for i, source in enumerate(self.sources)}
        self.n_sources = len(self.sources)
        self.n_slots = len(table)
        self.n_objects = len(table.objects)

        # Vote-counting order: per slot, providers in the by-object
        # index's set iteration order — the exact order the dict path's
        # `sum(scores[s] for s in providers)` walks, so the ACCU
        # bincount accumulates bitwise identically.
        claim_slot: list[int] = []
        claim_src: list[int] = []
        slot_of = table._slot_of
        for obj in table.objects:
            local = slot_of[obj]
            for value, providers in dataset.values_for_view(obj).items():
                slot = local[value]
                for source in providers:
                    claim_slot.append(slot)
                    claim_src.append(src_code[source])
        self.claim_slot = np.asarray(claim_slot, dtype=np.int64)
        self.claim_src = np.asarray(claim_src, dtype=np.int64)

        # Accuracy order: per source (sorted), that source's claims in
        # its by-source insertion order — the dict path's
        # `soft_accuracies` walk, for the same bitwise reason.
        acc_slot: list[int] = []
        acc_src: list[int] = []
        acc_counts = np.zeros(self.n_sources, dtype=np.float64)
        for code, source in enumerate(self.sources):
            claims = dataset.claims_by_view(source)
            acc_counts[code] = len(claims)
            for obj, claim in claims.items():
                acc_slot.append(slot_of[obj][claim.value])
                acc_src.append(code)
        self._acc_slot = np.asarray(acc_slot, dtype=np.int64)
        self._acc_src = np.asarray(acc_src, dtype=np.int64)
        self._acc_counts = acc_counts

        # Static slot geometry for the DEPEN grouping.
        slot_sizes = np.bincount(self.claim_slot, minlength=self.n_slots)
        starts = np.zeros(self.n_slots + 1, dtype=np.int64)
        np.cumsum(slot_sizes, out=starts[1:])
        self._slot_starts = starts[:-1]
        self._max_group = int(slot_sizes.max()) if slot_sizes.size else 0

        # Rank-order cache (DEPEN): rebuilt only on ranking change.
        self._ranking: list[int] | None = None
        self._sorted_slot = None
        self._sorted_src = None
        self._lags: list[tuple] = []

    # -- guards ----------------------------------------------------------

    def _check_version(self) -> None:
        if self.dataset.version != self.dataset_version:
            raise DataError(
                "dataset has grown since this truth-round engine was "
                "built — rebuild the engine (and its ValueProbTable)"
            )

    # -- step 0: accuracy scores (the hoisted clamp + log) ---------------

    def clamp(self, accuracies, floor: float, ceiling: float):
        """Vectorised :meth:`IterationParams.clamp_accuracy`."""
        return np.minimum(ceiling, np.maximum(floor, accuracies))

    def scores(self, clamped, n_false_values: int):
        """``A'(S) = ln(n·A / (1-A))`` over the whole accuracy array.

        The per-round per-source ``accuracy_score`` calls of the dict
        path, hoisted into one vectorised ratio plus one batched log
        pass. The log itself maps :func:`math.log` element-wise instead
        of calling ``np.log`` — numpy's SIMD log diverges from libm by
        1 ULP on ~0.1% of inputs, which would break the bitwise
        equivalence with the dict path (see the module docstring).
        """
        if n_false_values < 1:
            raise ParameterError(
                f"n_false_values must be >= 1, got {n_false_values}"
            )
        return _exact_unary(
            math.log, n_false_values * clamped / (1.0 - clamped)
        )

    # -- step 1: vote counts ---------------------------------------------

    def accu_counts(self, scores):
        """ACCU vote counts per slot: one segment sum of claim scores."""
        self._check_version()
        return np.bincount(
            self.claim_slot,
            weights=scores[self.claim_src],
            minlength=self.n_slots,
        )

    def depen_counts(self, scores, dep_matrix, copy_rate: float, clamped):
        """DEPEN vote counts: rank-ordered, dependence-discounted.

        ``dep_matrix`` is the symmetric per-source-pair dependence
        posterior matrix (:func:`dependence_matrix`); ``clamped`` the
        accuracy array the ranking derives from. Claims are processed in
        each slot's decreasing-accuracy order; claim ``j`` of a slot is
        weighted by ``Π_{i<j} (1 - c·P(dep))`` with the factors
        multiplied in ascending ``i`` — the reference
        ``independence_weight`` walk, one lag per vectorised pass.
        """
        self._check_version()
        if not 0.0 < copy_rate < 1.0:
            raise ParameterError(
                f"copy_rate must be in (0, 1), got {copy_rate}"
            )
        self._rank_order(clamped)
        sorted_slot = self._sorted_slot
        sorted_src = self._sorted_src
        weight = np.ones(sorted_src.size, dtype=np.float64)
        for idx, src, anchor_src in self._lags:
            weight[idx] *= 1.0 - copy_rate * dep_matrix[src, anchor_src]
        return np.bincount(
            sorted_slot,
            weights=scores[sorted_src] * weight,
            minlength=self.n_slots,
        )

    def _rank_order(self, clamped) -> None:
        """(Re)build the rank-sorted claim permutation and lag index.

        The global ranking — sources by ``(-accuracy, source)`` — is the
        only input; while it is unchanged (the common case once the
        iteration starts settling) the cached argsort and per-lag
        gather indexes are reused as-is, the array analogue of
        :class:`~repro.truth.vote_counting.VoteOrderCache`.
        """
        acc = clamped.tolist()
        ranking = sorted(
            range(self.n_sources), key=lambda code: (-acc[code], code)
        )
        if ranking == self._ranking:
            return
        rank_of = np.empty(self.n_sources, dtype=np.int64)
        rank_of[ranking] = np.arange(self.n_sources)
        keys = self.claim_slot * self.n_sources + rank_of[self.claim_src]
        order = np.argsort(keys, kind="stable")
        sorted_slot = self.claim_slot[order]
        sorted_src = self.claim_src[order]
        offsets = (
            np.arange(sorted_slot.size, dtype=np.int64)
            - self._slot_starts[sorted_slot]
        )
        lags = []
        for i in range(self._max_group - 1):
            idx = np.flatnonzero(offsets > i)
            if idx.size == 0:
                break
            anchor_pos = self._slot_starts[sorted_slot[idx]] + i
            lags.append((idx, sorted_src[idx], sorted_src[anchor_pos]))
        self._ranking = ranking
        self._sorted_slot = sorted_slot
        self._sorted_src = sorted_src
        self._lags = lags

    # -- steps 2 + 3: decisions and softmax distributions ----------------

    def decide_and_distributions(self, counts):
        """Per-object argmax decisions and softmax distributions.

        Returns ``(winner_slots, probs)``: the winning slot per object
        row (ties broken by value ``repr``, exactly like
        :func:`~repro.truth.vote_counting.decide`) and the slot-aligned
        probability array (softmax over each object's segment, with the
        dict path's max-shift and accumulation order).
        """
        bounds = self.table.bounds
        row_of_slot = self.table.row_of_slot
        peak = np.maximum.reduceat(counts, bounds[:-1])
        slot_peak = peak[row_of_slot]

        # Decisions: among each object's maximal-count slots, the dict
        # path's max((count, repr)) picks the largest repr, first wins.
        tie_slots = np.flatnonzero(counts == slot_peak)
        tie_rows = row_of_slot[tie_slots]
        _, first = np.unique(tie_rows, return_index=True)
        winners = tie_slots[first]
        n_ties = np.bincount(tie_rows, minlength=self.n_objects)
        for row in np.flatnonzero(n_ties > 1).tolist():
            lo, hi = np.searchsorted(tie_rows, [row, row + 1])
            values = self.table.slot_values
            winners[row] = max(
                tie_slots[lo:hi].tolist(),
                key=lambda slot: repr(values[slot]),
            )

        # Distributions: exp evaluated with math.exp element-wise (the
        # bitwise-parity requirement, see the module docstring); the
        # normaliser is a sequential per-object segment sum.
        weights = _exact_unary(math.exp, counts - slot_peak)
        totals = np.bincount(
            row_of_slot, weights=weights, minlength=self.n_objects
        )
        return winners, weights / totals[row_of_slot]

    # -- step 4: accuracy re-estimation ----------------------------------

    def soft_accuracies(self, probs):
        """Per-source mean probability of its claims: gather + segment mean."""
        self._check_version()
        mass = np.bincount(
            self._acc_src,
            weights=probs[self._acc_slot],
            minlength=self.n_sources,
        )
        return mass / self._acc_counts

    # -- materialisation --------------------------------------------------

    def decisions_dict(self, winners) -> dict[ObjectId, Value]:
        """``{object: value}`` from a winner-slot array."""
        values = self.table.slot_values
        return {
            obj: values[slot]
            for obj, slot in zip(self.table.objects, winners.tolist())
        }

    def distributions_dict(
        self, probs
    ) -> dict[ObjectId, dict[Value, float]]:
        """``{object: {value: p}}`` from a slot-aligned probability array."""
        values = self.table.slot_values
        flat = probs.tolist()
        bounds = self.table.bounds.tolist()
        return {
            obj: dict(zip(values[bounds[row] : bounds[row + 1]],
                          flat[bounds[row] : bounds[row + 1]]))
            for row, obj in enumerate(self.table.objects)
        }

    def accuracies_dict(self, accuracies) -> dict[SourceId, float]:
        """``{source: accuracy}`` from an accuracy array."""
        return dict(zip(self.sources, accuracies.tolist()))


def dependence_matrix(graph, sources: list[SourceId], src_code=None):
    """The symmetric dependence-posterior matrix of a graph.

    ``dep[i, j]`` is ``graph.probability(sources[i], sources[j])``;
    unanalysed pairs are 0.0 (treated as independent — their discount
    factor is exactly 1.0, so multiplying by it is a bitwise no-op,
    matching the dict path's behaviour of multiplying anyway).
    """
    if src_code is None:
        src_code = {source: i for i, source in enumerate(sources)}
    dep = np.zeros((len(sources), len(sources)), dtype=np.float64)
    for pair in graph:
        i = src_code.get(pair.s1)
        j = src_code.get(pair.s2)
        if i is None or j is None:
            continue
        dep[i, j] = pair.p_dependent
        dep[j, i] = pair.p_dependent
    return dep
