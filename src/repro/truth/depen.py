"""DEPEN — the paper's core contribution, instantiated.

Section 3.2: *"A solution strategy can be devised using Bayesian analysis
by iteratively determining true values, computing accuracy of sources,
and discovering dependence between sources."*

Each round runs, in order:

1. **dependence** — pairwise copy posteriors from the *current* soft
   truth (:mod:`repro.dependence.bayes`); the first round uses the
   truth-agnostic uniform distribution over observed values, so naive
   voting's copier-boosted majorities never get baked in;
2. **voting** — dependence-discounted vote counts
   (:func:`repro.truth.vote_counting.discounted_vote_counts`): a copied
   vote is counted approximately once;
3. **truth** — per-object softmax distributions and decisions;
4. **accuracy** — soft accuracy re-estimation per source.

The loop stops when decisions are stable and accuracies have settled, or
at the round cap. On the paper's Table 1, the first round already flips
Halevy and Dalvi to the correct values and the second round recovers
Dong's AT&T — reproducing Example 3.1's "ignore the values provided by
S4 and S5 during the voting process".
"""

from __future__ import annotations

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import (
    PairDependence,
    pair_posterior,
    uniform_value_probabilities,
)
from repro.dependence.bayes_batch import resolve_posterior_backend
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import DependenceGraph, discover_dependence
from repro.exceptions import ConvergenceError
from repro.truth.base import RoundTrace, TruthDiscovery, TruthResult
from repro.truth.columnar import (
    TruthRoundEngine,
    ValueProbTable,
    dependence_matrix,
    resolve_truth_backend,
)
from repro.truth.vote_counting import (
    VoteOrderCache,
    accuracy_score,
    all_discounted_vote_counts,
    decisions_and_distributions,
    soft_accuracies,
)


class Depen(TruthDiscovery):
    """Copy-aware iterative truth discovery.

    Parameters
    ----------
    params:
        The dependence model (prior ``alpha``, copy rate ``c``, ``n``
        false values). ``n`` is shared with the accuracy-score formula.
    iteration:
        Convergence controls.
    min_overlap:
        Source pairs sharing fewer objects than this are not analysed
        (treated as independent) — Example 4.1 uses 10.
    """

    name = "depen"

    def __init__(
        self,
        params: DependenceParams | None = None,
        iteration: IterationParams | None = None,
        min_overlap: int = 1,
    ) -> None:
        self.params = params or DependenceParams()
        self.iteration = iteration or IterationParams()
        self.min_overlap = min_overlap

    def discover(
        self,
        dataset: ClaimDataset,
        *,
        evidence_cache: EvidenceCache | None = None,
    ) -> TruthResult:
        """Run the iterative loop; see the module docstring.

        ``evidence_cache`` lets a streaming caller
        (:class:`~repro.dependence.streaming.StreamingDependenceEngine`)
        hand in its incrementally maintained cache, so a re-run after
        ingest pays no structural pass at all. The cache must be bound
        to this dataset and built for the same params and overlap
        prefilter — all three are checked.
        """
        self._check_dataset(dataset)
        if evidence_cache is not None:
            evidence_cache.check_bound(dataset, self.min_overlap)
        it = self.iteration
        # The overlap structure never changes between rounds, so the
        # candidate pairs and every structural part of the pair evidence
        # are computed once; only the value_probs-dependent soft parts
        # are refreshed each round inside discover_dependence. Provider
        # orderings for the vote discount are likewise reused until the
        # accuracy ranking actually changes.
        owns_cache = evidence_cache is None
        if evidence_cache is None:
            evidence_cache = EvidenceCache(
                dataset, min_overlap=self.min_overlap, params=self.params
            )
        backend = resolve_truth_backend(self.params.truth_backend)
        try:
            if backend == "columnar":
                return self._iterate_columnar(dataset, evidence_cache, it)
            order_cache = VoteOrderCache(dataset)
            return self._iterate(
                dataset, evidence_cache, order_cache, it
            )
        finally:
            if owns_cache:
                # An internally built cache must not strand a
                # persistent worker pool (no-op under the ephemeral
                # default); a caller-supplied cache keeps its own
                # lifecycle (the streaming engine reuses it).
                evidence_cache.close()

    def _iterate(
        self,
        dataset: ClaimDataset,
        evidence_cache: EvidenceCache,
        order_cache: VoteOrderCache,
        it: IterationParams,
    ) -> TruthResult:
        accuracies = {s: it.initial_accuracy for s in dataset.sources}
        value_probs = uniform_value_probabilities(dataset)
        decisions: dict = {}
        distributions: dict = {}
        dependence = DependenceGraph()
        trace: list[RoundTrace] = []
        converged = False
        rounds = 0
        for rounds in range(1, it.max_rounds + 1):
            clamped = {s: it.clamp_accuracy(a) for s, a in accuracies.items()}
            dependence = discover_dependence(
                dataset,
                value_probs,
                clamped,
                self.params,
                min_overlap=self.min_overlap,
                evidence_cache=evidence_cache,
            )
            scores = {
                s: accuracy_score(a, self.params.n_false_values)
                for s, a in clamped.items()
            }
            counts = all_discounted_vote_counts(
                dataset,
                scores,
                dependence,
                self.params.copy_rate,
                clamped,
                order_cache=order_cache,
            )
            new_decisions, distributions = decisions_and_distributions(
                dataset, counts
            )
            new_accuracies = soft_accuracies(dataset, distributions)

            changed = sum(
                1
                for obj, value in new_decisions.items()
                if decisions.get(obj) != value
            )
            movement = max(
                abs(new_accuracies[s] - accuracies[s]) for s in new_accuracies
            )
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                )
            )
            decisions, accuracies = new_decisions, new_accuracies
            value_probs = distributions
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )
        return TruthResult(
            decisions=decisions,
            distributions=distributions,
            accuracies=accuracies,
            dependence=dependence,
            rounds=rounds,
            converged=converged,
            trace=trace,
        )

    def _iterate_columnar(
        self,
        dataset: ClaimDataset,
        evidence_cache: EvidenceCache,
        it: IterationParams,
    ) -> TruthResult:
        """The same loop as :meth:`_iterate`, as array kernels.

        Value probabilities live in a
        :class:`~repro.truth.columnar.ValueProbTable` that the evidence
        cache consumes positionally (no per-entry dict probes) and the
        :class:`~repro.truth.columnar.TruthRoundEngine` kernels produce
        directly; results are bit-for-bit identical to the dict path
        (the kernels preserve its accumulation orders and scalar
        transcendentals — see :mod:`repro.truth.columnar`).

        Rounds after the first restrict the dependence re-scoring: a
        pair's posterior is recomputed only when some input of it moved
        — an agreement entry's truth probability or an endpoint's
        clamped accuracy drifted beyond ``it.rescore_tolerance`` since
        the round *that pair* was last scored. Drift accumulates
        monotonically; each pair's baseline is the cumulative drift
        snapshot taken the round it was stamped (per-slot round stamps
        in the columnar entry store), so a pair's baseline resets
        exactly when it is re-scored. With a list entry store there are
        no stamps and the coarser shared baseline applies: it resets
        only on rounds where every pair was re-scored, so it reuses a
        subset of what the per-pair baseline reuses. With the 0.0
        default only bitwise-unchanged inputs are reused, which is
        exact either way; the per-round counters land in the trace
        (``pairs_rescored`` / ``pairs_reused``).

        With the batched posterior backend
        (:mod:`repro.dependence.bayes_batch`, the default on a columnar
        entry store) the whole dependence step is fused: the affected
        set is a boolean mask over pair positions, the posteriors for
        the selected positions come from one
        :meth:`~repro.dependence.bayes_batch.BatchedPosteriorEngine.posterior_arrays`
        call, and they are written straight into the persistent
        dependence matrix — a steady-state round does no per-pair
        Python work at all. The scalar backend
        (``posterior_backend="scalar"``) keeps the per-pair
        :func:`~repro.dependence.bayes.pair_posterior` loop as the
        bit-for-bit reference.
        """
        import numpy as np

        table = ValueProbTable(dataset)
        engine = TruthRoundEngine(dataset, table)
        params = self.params
        sources = engine.sources
        src_code = {source: i for i, source in enumerate(sources)}
        tol = it.rescore_tolerance
        accuracies = np.full(
            engine.n_sources, it.initial_accuracy, dtype=np.float64
        )
        # Cumulative input drift. On the per-pair path (columnar entry
        # store) these grow monotonically and each stamp round keeps a
        # snapshot as its baseline; on the list path they reset whenever
        # every pair was re-scored (the shared baseline).
        drift_p = np.zeros(len(table), dtype=np.float64)
        drift_a = np.zeros(engine.n_sources, dtype=np.float64)
        per_pair = evidence_cache.entry_store == "columnar"
        batched = (
            resolve_posterior_backend(params.posterior_backend, evidence_cache)
            == "batch"
        )
        base_p: dict[int, object] = {}
        base_a: dict[int, object] = {}
        prev_clamped = None
        graph = DependenceGraph()
        winners = None
        trace: list[RoundTrace] = []
        converged = False
        rounds = 0
        # Batched-posterior state: the engine, the current per-position
        # posterior arrays and the persistent dependence matrix (only
        # re-scored positions are rewritten each round; the graph object
        # is materialised once, after the loop).
        posterior = None
        post_ind = post_12 = post_21 = None
        pair_s1c = pair_s2c = None
        dep = None
        # Endpoint-code arrays for the scalar path's vectorised
        # "pairs touching a moved source" selection; built lazily once
        # per run (the pair set is fixed across rounds).
        pair_keys: list | None = None
        key1_codes = None
        key2_codes = None
        for rounds in range(1, it.max_rounds + 1):
            clamped = engine.clamp(
                accuracies, it.accuracy_floor, it.accuracy_ceiling
            )
            if prev_clamped is not None:
                drift_a += np.abs(clamped - prev_clamped)
            if batched:
                # Fused DEPEN round: posteriors for every affected pair
                # come from one batched kernel pass and land straight in
                # the dependence matrix — zero per-pair Python work in
                # the steady state. The accuracy vector is already in
                # engine-source order, so no dict round-trip either.
                evidence_cache.refresh(table)
                if posterior is None:
                    posterior = evidence_cache.posterior_engine(params)
                    pair_s1c, pair_s2c = posterior.endpoint_codes()
                    dep = np.zeros(
                        (engine.n_sources, engine.n_sources),
                        dtype=np.float64,
                    )
                if rounds == 1:
                    post_ind, post_12, post_21 = posterior.posterior_arrays(
                        clamped
                    )
                    rescored = int(post_ind.size)
                    reused = 0
                    p_dep = post_12 + post_21
                    dep[pair_s1c, pair_s2c] = p_dep
                    dep[pair_s2c, pair_s1c] = p_dep
                    evidence_cache.stamp_all_pairs(rounds)
                    base_p[rounds] = drift_p.copy()
                    base_a[rounds] = drift_a.copy()
                else:
                    stamps = posterior.stamp_array()
                    affected_mask = np.zeros(stamps.size, dtype=bool)
                    for stamp in np.unique(stamps).tolist():
                        in_group = stamps == stamp
                        if stamp not in base_p:
                            # Never scored (stamp 0) or the baseline
                            # predates this call: no basis for reuse.
                            affected_mask |= in_group
                            continue
                        moved = posterior.moved_pair_mask(
                            drift_p - base_p[stamp] > tol
                        )
                        moved_src = drift_a - base_a[stamp] > tol
                        affected_mask |= in_group & (
                            moved
                            | moved_src[pair_s1c]
                            | moved_src[pair_s2c]
                        )
                    sel = np.flatnonzero(affected_mask)
                    rescored = int(sel.size)
                    reused = int(post_ind.size) - rescored
                    if sel.size:
                        pi, p12, p21 = posterior.posterior_arrays(
                            clamped, sel
                        )
                        post_ind[sel] = pi
                        post_12[sel] = p12
                        post_21[sel] = p21
                        p_dep = p12 + p21
                        dep[pair_s1c[sel], pair_s2c[sel]] = p_dep
                        dep[pair_s2c[sel], pair_s1c[sel]] = p_dep
                        posterior.stamp_positions(sel, rounds)
                        base_p[rounds] = drift_p.copy()
                        base_a[rounds] = drift_a.copy()
                    live = set(np.unique(posterior.stamp_array()).tolist())
                    for stamp in list(base_p):
                        if stamp not in live:
                            del base_p[stamp]
                            del base_a[stamp]
            else:
                acc_map = dict(zip(sources, clamped.tolist()))
                if rounds == 1:
                    graph = discover_dependence(
                        dataset,
                        table,
                        acc_map,
                        params,
                        min_overlap=self.min_overlap,
                        evidence_cache=evidence_cache,
                    )
                    rescored = len(evidence_cache)
                    reused = 0
                    if per_pair:
                        evidence_cache.stamp_all_pairs(rounds)
                        base_p[rounds] = drift_p.copy()
                        base_a[rounds] = drift_a.copy()
                    else:
                        drift_p[:] = 0.0
                        drift_a[:] = 0.0
                else:
                    evidence_cache.refresh(table)
                    if pair_keys is None:
                        pair_keys = list(evidence_cache)
                        key1_codes = np.fromiter(
                            (src_code[k1] for k1, _ in pair_keys),
                            dtype=np.int64,
                            count=len(pair_keys),
                        )
                        key2_codes = np.fromiter(
                            (src_code[k2] for _, k2 in pair_keys),
                            dtype=np.int64,
                            count=len(pair_keys),
                        )
                    if per_pair:
                        affected = set()
                        stamps_of = evidence_cache.pair_round_stamps()
                        groups: dict[int, list[int]] = {}
                        for idx, key in enumerate(pair_keys):
                            groups.setdefault(stamps_of[key], []).append(idx)
                        for stamp, indices in groups.items():
                            if stamp not in base_p:
                                # Never scored (stamp 0) or the baseline
                                # predates this call: no basis for reuse.
                                affected.update(
                                    pair_keys[i] for i in indices
                                )
                                continue
                            moved = evidence_cache.pairs_with_moved_entries(
                                drift_p - base_p[stamp] > tol
                            )
                            if moved:
                                affected.update(
                                    moved.intersection(
                                        pair_keys[i] for i in indices
                                    )
                                )
                            moved_src = drift_a - base_a[stamp] > tol
                            if moved_src.any():
                                idx_arr = np.asarray(
                                    indices, dtype=np.int64
                                )
                                hit = (
                                    moved_src[key1_codes[idx_arr]]
                                    | moved_src[key2_codes[idx_arr]]
                                )
                                affected.update(
                                    pair_keys[i]
                                    for i in idx_arr[hit].tolist()
                                )
                    else:
                        affected = evidence_cache.pairs_with_moved_entries(
                            drift_p > tol
                        )
                        moved_src = drift_a > tol
                        if moved_src.any():
                            hit = (
                                moved_src[key1_codes]
                                | moved_src[key2_codes]
                            )
                            affected.update(
                                key
                                for key, h in zip(pair_keys, hit.tolist())
                                if h
                            )
                    previous = graph
                    graph = DependenceGraph()
                    rescored = 0
                    rescored_keys: list = []
                    for key in evidence_cache:
                        pair = None if key in affected else previous.get(*key)
                        if pair is None:
                            pair = pair_posterior(
                                evidence_cache.evidence(*key),
                                acc_map[key[0]],
                                acc_map[key[1]],
                                params,
                            )
                            rescored += 1
                            if per_pair:
                                rescored_keys.append(key)
                        graph.add(pair)
                    reused = len(evidence_cache) - rescored
                    if per_pair:
                        if rescored_keys:
                            evidence_cache.stamp_pairs(rescored_keys, rounds)
                            base_p[rounds] = drift_p.copy()
                            base_a[rounds] = drift_a.copy()
                        live = set(evidence_cache.pair_round_stamps().values())
                        for stamp in list(base_p):
                            if stamp not in live:
                                del base_p[stamp]
                                del base_a[stamp]
                    elif reused == 0:
                        # Everything was re-scored against the current
                        # inputs: they are the new shared drift baseline.
                        drift_p[:] = 0.0
                        drift_a[:] = 0.0
                dep = dependence_matrix(graph, sources, src_code)
            scores = engine.scores(clamped, params.n_false_values)
            counts = engine.depen_counts(
                scores, dep, params.copy_rate, clamped
            )
            new_winners, probs = engine.decide_and_distributions(counts)
            new_accuracies = engine.soft_accuracies(probs)
            changed = (
                engine.n_objects
                if winners is None
                else int(np.count_nonzero(new_winners != winners))
            )
            movement = float(np.max(np.abs(new_accuracies - accuracies)))
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                    pairs_rescored=rescored,
                    pairs_reused=reused,
                )
            )
            winners = new_winners
            accuracies = new_accuracies
            drift_p += np.abs(probs - table.probs)
            table.set_probs(probs, tolerance=tol)
            prev_clamped = clamped
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if batched and posterior is not None:
            # One-time graph materialisation from the posterior arrays;
            # tolist() yields the exact Python floats the scalar path's
            # PairDependence objects hold.
            graph = DependenceGraph()
            pi_list = post_ind.tolist()
            p12_list = post_12.tolist()
            p21_list = post_21.tolist()
            for i, (s1, s2) in enumerate(posterior.pair_keys()):
                graph.add(
                    PairDependence(
                        s1=s1,
                        s2=s2,
                        p_independent=pi_list[i],
                        p_s1_copies_s2=p12_list[i],
                        p_s2_copies_s1=p21_list[i],
                    )
                )
        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )
        return TruthResult(
            decisions=engine.decisions_dict(winners),
            distributions=engine.distributions_dict(table.probs),
            accuracies=engine.accuracies_dict(accuracies),
            dependence=graph,
            rounds=rounds,
            converged=converged,
            trace=trace,
        )
