"""DEPEN — the paper's core contribution, instantiated.

Section 3.2: *"A solution strategy can be devised using Bayesian analysis
by iteratively determining true values, computing accuracy of sources,
and discovering dependence between sources."*

Each round runs, in order:

1. **dependence** — pairwise copy posteriors from the *current* soft
   truth (:mod:`repro.dependence.bayes`); the first round uses the
   truth-agnostic uniform distribution over observed values, so naive
   voting's copier-boosted majorities never get baked in;
2. **voting** — dependence-discounted vote counts
   (:func:`repro.truth.vote_counting.discounted_vote_counts`): a copied
   vote is counted approximately once;
3. **truth** — per-object softmax distributions and decisions;
4. **accuracy** — soft accuracy re-estimation per source.

The loop stops when decisions are stable and accuracies have settled, or
at the round cap. On the paper's Table 1, the first round already flips
Halevy and Dalvi to the correct values and the second round recovers
Dong's AT&T — reproducing Example 3.1's "ignore the values provided by
S4 and S5 during the voting process".
"""

from __future__ import annotations

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import DependenceGraph, discover_dependence
from repro.exceptions import ConvergenceError
from repro.truth.base import RoundTrace, TruthDiscovery, TruthResult
from repro.truth.vote_counting import (
    VoteOrderCache,
    accuracy_score,
    all_discounted_vote_counts,
    decisions_and_distributions,
    soft_accuracies,
)


class Depen(TruthDiscovery):
    """Copy-aware iterative truth discovery.

    Parameters
    ----------
    params:
        The dependence model (prior ``alpha``, copy rate ``c``, ``n``
        false values). ``n`` is shared with the accuracy-score formula.
    iteration:
        Convergence controls.
    min_overlap:
        Source pairs sharing fewer objects than this are not analysed
        (treated as independent) — Example 4.1 uses 10.
    """

    name = "depen"

    def __init__(
        self,
        params: DependenceParams | None = None,
        iteration: IterationParams | None = None,
        min_overlap: int = 1,
    ) -> None:
        self.params = params or DependenceParams()
        self.iteration = iteration or IterationParams()
        self.min_overlap = min_overlap

    def discover(
        self,
        dataset: ClaimDataset,
        *,
        evidence_cache: EvidenceCache | None = None,
    ) -> TruthResult:
        """Run the iterative loop; see the module docstring.

        ``evidence_cache`` lets a streaming caller
        (:class:`~repro.dependence.streaming.StreamingDependenceEngine`)
        hand in its incrementally maintained cache, so a re-run after
        ingest pays no structural pass at all. The cache must be bound
        to this dataset and built for the same params and overlap
        prefilter — all three are checked.
        """
        self._check_dataset(dataset)
        if evidence_cache is not None:
            evidence_cache.check_bound(dataset, self.min_overlap)
        it = self.iteration
        # The overlap structure never changes between rounds, so the
        # candidate pairs and every structural part of the pair evidence
        # are computed once; only the value_probs-dependent soft parts
        # are refreshed each round inside discover_dependence. Provider
        # orderings for the vote discount are likewise reused until the
        # accuracy ranking actually changes.
        owns_cache = evidence_cache is None
        if evidence_cache is None:
            evidence_cache = EvidenceCache(
                dataset, min_overlap=self.min_overlap, params=self.params
            )
        order_cache = VoteOrderCache(dataset)
        try:
            return self._iterate(
                dataset, evidence_cache, order_cache, it
            )
        finally:
            if owns_cache:
                # An internally built cache must not strand a
                # persistent worker pool (no-op under the ephemeral
                # default); a caller-supplied cache keeps its own
                # lifecycle (the streaming engine reuses it).
                evidence_cache.close()

    def _iterate(
        self,
        dataset: ClaimDataset,
        evidence_cache: EvidenceCache,
        order_cache: VoteOrderCache,
        it: IterationParams,
    ) -> TruthResult:
        accuracies = {s: it.initial_accuracy for s in dataset.sources}
        value_probs = uniform_value_probabilities(dataset)
        decisions: dict = {}
        distributions: dict = {}
        dependence = DependenceGraph()
        trace: list[RoundTrace] = []
        converged = False
        rounds = 0
        for rounds in range(1, it.max_rounds + 1):
            clamped = {s: it.clamp_accuracy(a) for s, a in accuracies.items()}
            dependence = discover_dependence(
                dataset,
                value_probs,
                clamped,
                self.params,
                min_overlap=self.min_overlap,
                evidence_cache=evidence_cache,
            )
            scores = {
                s: accuracy_score(a, self.params.n_false_values)
                for s, a in clamped.items()
            }
            counts = all_discounted_vote_counts(
                dataset,
                scores,
                dependence,
                self.params.copy_rate,
                clamped,
                order_cache=order_cache,
            )
            new_decisions, distributions = decisions_and_distributions(
                dataset, counts
            )
            new_accuracies = soft_accuracies(dataset, distributions)

            changed = sum(
                1
                for obj, value in new_decisions.items()
                if decisions.get(obj) != value
            )
            movement = max(
                abs(new_accuracies[s] - accuracies[s]) for s in new_accuracies
            )
            trace.append(
                RoundTrace(
                    round_index=rounds,
                    accuracy_change=movement,
                    decisions_changed=changed,
                )
            )
            decisions, accuracies = new_decisions, new_accuracies
            value_probs = distributions
            if movement < it.accuracy_tolerance and changed == 0 and rounds > 1:
                converged = True
                break

        if not converged and it.fail_on_max_rounds:
            raise ConvergenceError(
                f"{self.name}: no convergence in {it.max_rounds} rounds"
            )
        return TruthResult(
            decisions=decisions,
            distributions=distributions,
            accuracies=accuracies,
            dependence=dependence,
            rounds=rounds,
            converged=converged,
            trace=trace,
        )
