"""Dependence-aware consensus of opinions (Example 2.2's remedy).

"A naive aggregation of ratings from reviewers R1..R4 would significantly
differ from the aggregation without considering R4." The fix mirrors the
DEPEN vote discount: detect rater dependence, then aggregate with each
rater weighted by the probability its ratings are genuinely its own.

The aggregation is iterative for the same chicken-and-egg reason truth
discovery is: dependence detection conditions on consensus distributions,
which themselves should down-weight dependent raters. Two to three
rounds settle in practice; the round cap is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.params import OpinionParams
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError
from repro.opinions.ratings import RatingMatrix

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.dependence.opinions import RaterDependenceResult


@dataclass
class ConsensusResult:
    """Output of dependence-aware consensus aggregation.

    ``distributions``
        Per-item consensus distribution over the scale.
    ``mean_scores``
        Per-item weighted mean scale index (the "aggregate rating").
    ``weights``
        Final per-rater independence weights in [0, 1].
    ``dependence``
        The final rater-dependence posteriors.
    """

    distributions: dict[ObjectId, dict[Value, float]]
    mean_scores: dict[ObjectId, float]
    weights: dict[SourceId, float]
    dependence: "RaterDependenceResult"
    rounds: int = 0
    trace: list[float] = field(default_factory=list)

    def consensus_level(self, item: ObjectId) -> Value:
        """The modal consensus level for ``item``."""
        dist = self.distributions.get(item)
        if not dist:
            raise DataError(f"no consensus computed for item {item!r}")
        return max(dist, key=lambda level: (dist[level], repr(level)))


class DependenceAwareConsensus:
    """Iterative consensus: detect rater dependence, down-weight, repeat.

    With ``aware=False`` the aggregator skips detection and weights every
    rater 1.0 — the naive baseline of Example 2.2, kept in the same class
    so benchmarks flip one flag.
    """

    def __init__(
        self,
        params: OpinionParams | None = None,
        min_co_rated: int = 1,
        max_rounds: int = 3,
        aware: bool = True,
    ) -> None:
        if max_rounds < 1:
            raise DataError(f"max_rounds must be >= 1, got {max_rounds}")
        self.params = params or OpinionParams()
        self.min_co_rated = min_co_rated
        self.max_rounds = max_rounds
        self.aware = aware

    def aggregate(self, matrix: RatingMatrix) -> ConsensusResult:
        """Run the (iterative) aggregation over a rating matrix."""
        # Imported here: repro.dependence.opinions imports this package's
        # ratings module, so a top-level import would be circular.
        from repro.dependence.opinions import (
            RaterDependenceResult,
            RaterPairCollector,
            discover_rater_dependence,
        )

        if len(matrix) == 0:
            raise DataError("rating matrix is empty")
        weights = {rater: 1.0 for rater in matrix.raters}
        dependence = RaterDependenceResult()
        trace: list[float] = []
        rounds = 0

        if self.aware:
            # The co-rating structure never changes between rounds; only
            # the rater weights do. Collect it once, refresh per round.
            collector = RaterPairCollector(matrix)
            for rounds in range(1, self.max_rounds + 1):
                dependence = discover_rater_dependence(
                    matrix,
                    self.params,
                    min_co_rated=self.min_co_rated,
                    weights=weights,
                    collector=collector,
                )
                new_weights = {
                    rater: dependence.dependence_weight(
                        rater, self.params.influence_rate
                    )
                    for rater in matrix.raters
                }
                movement = max(
                    abs(new_weights[r] - weights[r]) for r in new_weights
                )
                trace.append(movement)
                weights = new_weights
                if movement < 1e-6:
                    break

        distributions = {
            item: matrix.consensus(item, weights=weights)
            for item in matrix.items
        }
        mean_scores = {
            item: matrix.mean_score(item, weights=weights)
            for item in matrix.items
        }
        return ConsensusResult(
            distributions=distributions,
            mean_scores=mean_scores,
            weights=weights,
            dependence=dependence,
            rounds=rounds,
            trace=trace,
        )
