"""Rating matrices: opinion data with no underlying true value.

Section 2.1 distinguishes factual conflicts from "differences of opinion
(e.g., ratings associated with books or restaurants) with no underlying
true value, where one can seek to discover a consensus value". This
module provides the substrate for that setting:

* :class:`RatingMatrix` — an indexed rater × item matrix over an ordered
  ordinal scale (Table 2 uses ``Bad < Neutral < Good``);
* per-item *consensus distributions* (optionally weighted and
  leave-raters-out), the independence model that guards dependence
  detection against the "correlated information" challenge of
  section 3.1: two science-fiction fans agreeing about Star Wars is
  popular opinion, not copying — and popular opinion is exactly what the
  item's consensus distribution captures.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.claims import Rating
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError


class RatingScale:
    """An ordered ordinal scale, e.g. ``("Bad", "Neutral", "Good")``.

    Provides the *mirror* operation dissimilarity-dependence needs: the
    maximally opposed category (Good ↔ Bad; the middle of an odd scale
    mirrors to itself).
    """

    def __init__(self, levels: Sequence[Value]) -> None:
        if len(levels) < 2:
            raise DataError("a rating scale needs at least two levels")
        if len(set(levels)) != len(levels):
            raise DataError(f"rating scale has duplicate levels: {levels!r}")
        self.levels: tuple[Value, ...] = tuple(levels)
        self._index = {level: i for i, level in enumerate(self.levels)}

    def __len__(self) -> int:
        return len(self.levels)

    def __contains__(self, level: Value) -> bool:
        return level in self._index

    def index(self, level: Value) -> int:
        """Position of ``level`` on the scale (0 = worst)."""
        if level not in self._index:
            raise DataError(f"{level!r} is not on the scale {self.levels!r}")
        return self._index[level]

    def mirror(self, level: Value) -> Value:
        """The opposed category: reflect the scale around its midpoint."""
        return self.levels[len(self.levels) - 1 - self.index(level)]

    def distance(self, a: Value, b: Value) -> int:
        """Ordinal distance between two levels."""
        return abs(self.index(a) - self.index(b))


class RatingMatrix:
    """An indexed set of ratings over a fixed scale."""

    def __init__(self, scale: RatingScale, ratings: Iterable[Rating] = ()) -> None:
        self.scale = scale
        self._by_key: dict[tuple[SourceId, ObjectId], Rating] = {}
        self._by_item: dict[ObjectId, dict[SourceId, Value]] = {}
        self._by_rater: dict[SourceId, dict[ObjectId, Value]] = {}
        for rating in ratings:
            self.add(rating)

    def add(self, rating: Rating) -> None:
        """Insert one rating; re-rating the same item is rejected."""
        if rating.score not in self.scale:
            raise DataError(
                f"score {rating.score!r} is not on the scale {self.scale.levels!r}"
            )
        if rating.key in self._by_key:
            if self._by_key[rating.key] == rating:
                return
            raise DataError(
                f"rater {rating.rater!r} already rated item {rating.item!r}"
            )
        self._by_key[rating.key] = rating
        self._by_item.setdefault(rating.item, {})[rating.rater] = rating.score
        self._by_rater.setdefault(rating.rater, {})[rating.item] = rating.score

    @classmethod
    def from_table(
        cls,
        scale: Sequence[Value],
        table: dict[ObjectId, dict[SourceId, Value]],
    ) -> "RatingMatrix":
        """Build from ``{item: {rater: score}}`` (the shape of Table 2)."""
        matrix = cls(RatingScale(scale))
        for item, row in table.items():
            for rater, score in row.items():
                matrix.add(Rating(rater=rater, item=item, score=score))
        return matrix

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def raters(self) -> list[SourceId]:
        """All rater ids, sorted."""
        return sorted(self._by_rater)

    @property
    def items(self) -> list[ObjectId]:
        """All item ids, sorted."""
        return sorted(self._by_item)

    def score_of(self, rater: SourceId, item: ObjectId) -> Value | None:
        """The score ``rater`` gave ``item``, or ``None``."""
        rating = self._by_key.get((rater, item))
        return None if rating is None else rating.score

    def ratings_by(self, rater: SourceId) -> dict[ObjectId, Value]:
        """All of one rater's scores: ``{item: score}``."""
        return dict(self._by_rater.get(rater, {}))

    def ratings_for(self, item: ObjectId) -> dict[SourceId, Value]:
        """All scores for one item: ``{rater: score}``."""
        return dict(self._by_item.get(item, {}))

    def co_rated(self, r1: SourceId, r2: SourceId) -> list[ObjectId]:
        """Items both raters scored, sorted."""
        items1 = self._by_rater.get(r1, {})
        items2 = self._by_rater.get(r2, {})
        if len(items1) > len(items2):
            items1, items2 = items2, items1
        return sorted(item for item in items1 if item in items2)

    # ------------------------------------------------------------------
    # consensus distributions
    # ------------------------------------------------------------------

    def consensus(
        self,
        item: ObjectId,
        weights: dict[SourceId, float] | None = None,
        exclude: Iterable[SourceId] = (),
        smoothing: float = 0.5,
    ) -> dict[Value, float]:
        """Smoothed (weighted) distribution of scores for ``item``.

        ``exclude`` supports leave-pair-out estimation during dependence
        detection, so a suspect pair cannot inflate its own independence
        model. Laplace ``smoothing`` keeps every level's probability
        positive, which the Bayes likelihoods require.
        """
        if smoothing <= 0:
            raise DataError(f"smoothing must be > 0, got {smoothing}")
        excluded = set(exclude)
        counts = {level: smoothing for level in self.scale.levels}
        for rater, score in self._by_item.get(item, {}).items():
            if rater in excluded:
                continue
            weight = 1.0 if weights is None else max(0.0, weights.get(rater, 1.0))
            counts[score] += weight
        total = sum(counts.values())
        return {level: count / total for level, count in counts.items()}

    def mean_score(
        self,
        item: ObjectId,
        weights: dict[SourceId, float] | None = None,
    ) -> float:
        """Weighted mean scale index for ``item`` (the aggregate rating)."""
        scores = self._by_item.get(item, {})
        if not scores:
            raise DataError(f"no ratings for item {item!r}")
        total_weight = 0.0
        total = 0.0
        for rater, score in scores.items():
            weight = 1.0 if weights is None else max(0.0, weights.get(rater, 1.0))
            total_weight += weight
            total += weight * self.scale.index(score)
        if total_weight <= 0:
            raise DataError(f"all rater weights are zero for item {item!r}")
        return total / total_weight
