"""Opinion pooling: combining expert distributions under dependence.

The related-work section cites the statistics literature on the *opinion
pooling* problem — Clemen & Winkler's result that "information from a set
of dependent sources can be less valuable than that from independent
sources". This module provides the classic pools plus a
dependence-adjusted variant:

* :func:`linear_pool` — weighted mixture of the experts' distributions;
* :func:`log_pool` — weighted geometric mean (renormalised), the
  externally-Bayesian pool;
* :func:`dependence_adjusted_pool` — a linear/log pool whose weights are
  the experts' *independence weights* from a dependence analysis, with
  the resulting :func:`effective_sample_size` quantifying the
  Clemen–Winkler information loss: ``k`` dependent experts are worth
  fewer than ``k`` independent ones.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.types import SourceId, Value
from repro.exceptions import DataError, ParameterError

Distribution = dict[Value, float]


def _check_distribution(dist: Distribution, who: str) -> None:
    if not dist:
        raise DataError(f"{who}: empty distribution")
    total = sum(dist.values())
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        raise DataError(f"{who}: distribution sums to {total}, expected 1")
    if any(p < 0 for p in dist.values()):
        raise DataError(f"{who}: distribution has negative mass")


def _check_weights(weights: Sequence[float], count: int) -> list[float]:
    if len(weights) != count:
        raise ParameterError(
            f"got {len(weights)} weights for {count} distributions"
        )
    if any(w < 0 for w in weights):
        raise ParameterError("weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise ParameterError("at least one weight must be positive")
    return [w / total for w in weights]


def linear_pool(
    distributions: Sequence[Distribution],
    weights: Sequence[float] | None = None,
) -> Distribution:
    """Weighted mixture of distributions over a shared support."""
    if not distributions:
        raise DataError("need at least one distribution to pool")
    for i, dist in enumerate(distributions):
        _check_distribution(dist, f"expert {i}")
    if weights is None:
        weights = [1.0] * len(distributions)
    normalised = _check_weights(weights, len(distributions))
    support = {value for dist in distributions for value in dist}
    return {
        value: sum(
            w * dist.get(value, 0.0)
            for w, dist in zip(normalised, distributions)
        )
        for value in sorted(support, key=repr)
    }


def log_pool(
    distributions: Sequence[Distribution],
    weights: Sequence[float] | None = None,
) -> Distribution:
    """Weighted geometric-mean pool (renormalised).

    A value assigned zero mass by any positively-weighted expert gets
    zero mass in the pool — the well-known veto property of log pools.
    """
    if not distributions:
        raise DataError("need at least one distribution to pool")
    for i, dist in enumerate(distributions):
        _check_distribution(dist, f"expert {i}")
    if weights is None:
        weights = [1.0] * len(distributions)
    normalised = _check_weights(weights, len(distributions))
    support = {value for dist in distributions for value in dist}
    raw: Distribution = {}
    for value in support:
        log_mass = 0.0
        vetoed = False
        for w, dist in zip(normalised, distributions):
            p = dist.get(value, 0.0)
            if p <= 0.0:
                if w > 0.0:
                    vetoed = True
                    break
                continue
            log_mass += w * math.log(p)
        raw[value] = 0.0 if vetoed else math.exp(log_mass)
    total = sum(raw.values())
    if total <= 0:
        raise DataError("log pool is degenerate: all values vetoed")
    return {
        value: mass / total
        for value, mass in sorted(raw.items(), key=lambda kv: repr(kv[0]))
        if mass > 0.0
    }


def effective_sample_size(weights: dict[SourceId, float]) -> float:
    """How many *independent* experts the weighted panel is worth.

    The sum of independence weights: ``k`` fully independent experts give
    ``k``; a clique of perfect copiers collapses toward 1. This is the
    quantitative face of Clemen & Winkler's warning.
    """
    if not weights:
        raise DataError("no weights given")
    if any(w < 0 or w > 1 for w in weights.values()):
        raise DataError("independence weights must lie in [0, 1]")
    return sum(weights.values())


def dependence_adjusted_pool(
    distributions: dict[SourceId, Distribution],
    independence_weights: dict[SourceId, float],
    method: str = "linear",
) -> tuple[Distribution, float]:
    """Pool expert distributions using independence weights.

    Returns the pooled distribution and the panel's effective sample
    size. ``method`` is ``"linear"`` or ``"log"``.
    """
    if set(distributions) - set(independence_weights):
        missing = sorted(set(distributions) - set(independence_weights))
        raise ParameterError(f"no independence weight for experts: {missing}")
    experts = sorted(distributions)
    dists = [distributions[e] for e in experts]
    weights = [independence_weights[e] for e in experts]
    if method == "linear":
        pooled = linear_pool(dists, weights)
    elif method == "log":
        pooled = log_pool(dists, weights)
    else:
        raise ParameterError(f"unknown pooling method {method!r}")
    ess = effective_sample_size(
        {e: independence_weights[e] for e in experts}
    )
    return pooled, ess
