"""Opinion data: rating matrices, dependence-aware consensus, pooling."""

from repro.opinions.consensus import ConsensusResult, DependenceAwareConsensus
from repro.opinions.pooling import (
    dependence_adjusted_pool,
    effective_sample_size,
    linear_pool,
    log_pool,
)
from repro.opinions.ratings import RatingMatrix, RatingScale

__all__ = [
    "ConsensusResult",
    "DependenceAwareConsensus",
    "RatingMatrix",
    "RatingScale",
    "dependence_adjusted_pool",
    "effective_sample_size",
    "linear_pool",
    "log_pool",
]
