"""Clustering of value representations.

Groups the conflicting raw values of one object into clusters of
*alternative representations*, so truth discovery votes on
representation clusters instead of raw strings (splitting a value's
support across its spellings both weakens it and fakes diversity — the
pre-processing Example 4.1 performs before any analysis).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.core.types import Value
from repro.exceptions import LinkageError

SimilarityFn = Callable[[Value, Value], float]


class _UnionFind:
    """Minimal union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable[Value]) -> None:
        self._parent: dict[Value, Value] = {item: item for item in items}

    def find(self, item: Value) -> Value:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Value, b: Value) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self) -> list[list[Value]]:
        clusters: dict[Value, list[Value]] = {}
        for item in self._parent:
            clusters.setdefault(self.find(item), []).append(item)
        return list(clusters.values())


def cluster_values(
    values: Sequence[Value],
    similarity: SimilarityFn,
    threshold: float = 0.85,
) -> list[list[Value]]:
    """Single-link clustering: values join a cluster via any pair >= threshold.

    Single-link matches the representation-variant structure (a chain
    "J. Ullman" ~ "Jeffrey Ullman" ~ "Jeffrey D. Ullman" should be one
    cluster even if the ends are less similar). Returns clusters with
    deterministic internal and external order.
    """
    if not 0.0 < threshold <= 1.0:
        raise LinkageError(f"threshold must be in (0, 1], got {threshold}")
    unique = sorted(set(values), key=repr)
    union = _UnionFind(unique)
    for i, a in enumerate(unique):
        for b in unique[i + 1 :]:
            sim = similarity(a, b)
            if not 0.0 <= sim <= 1.0:
                raise LinkageError(
                    f"similarity({a!r}, {b!r}) = {sim}, must be in [0, 1]"
                )
            if sim >= threshold:
                union.union(a, b)
    clusters = [sorted(group, key=repr) for group in union.groups()]
    clusters.sort(key=lambda group: repr(group[0]))
    return clusters


def choose_representative(
    cluster: Sequence[Value],
    support: dict[Value, int] | None = None,
) -> Value:
    """Pick a cluster's canonical representative.

    With ``support`` (e.g. provider counts) the best-supported member
    wins; ties, and the unsupported case, prefer the longest
    representation (usually the most complete — "Jeffrey D. Ullman"
    over "J. Ullman"), then lexicographic order for determinism.
    """
    if not cluster:
        raise LinkageError("cannot choose a representative of an empty cluster")

    def sort_key(value: Value) -> tuple:
        backing = 0 if support is None else support.get(value, 0)
        length = len(value) if isinstance(value, (str, tuple)) else 0
        return (-backing, -length, repr(value))

    return sorted(cluster, key=sort_key)[0]


def canonicalisation_map(
    values: Sequence[Value],
    similarity: SimilarityFn,
    threshold: float = 0.85,
    support: dict[Value, int] | None = None,
) -> dict[Value, Value]:
    """Map every raw value to its cluster representative."""
    mapping: dict[Value, Value] = {}
    for cluster in cluster_values(values, similarity, threshold):
        representative = choose_representative(cluster, support)
        for value in cluster:
            mapping[value] = representative
    return mapping
