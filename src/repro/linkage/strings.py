"""String similarity primitives, implemented from scratch.

Record linkage (section 4) needs to recognise alternative representations
of the same value. These are the standard primitives every linkage
pipeline builds on, with the usual conventions: every similarity is
symmetric, returns a float in ``[0, 1]``, and equals 1.0 exactly on equal
inputs.
"""

from __future__ import annotations

from repro.exceptions import LinkageError


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for the O(min) row.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to [0, 1] by the longer length."""
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: transposition-tolerant matching for short strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)

    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted by a shared prefix (up to 4 chars).

    ``prefix_scale`` must lie in [0, 0.25] so the result stays in [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise LinkageError(
            f"prefix_scale must be in [0, 0.25], got {prefix_scale}"
        )
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def token_jaccard(a: str, b: str) -> float:
    """Jaccard overlap of whitespace token sets."""
    tokens_a = set(a.split())
    tokens_b = set(b.split())
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    union = tokens_a | tokens_b
    return len(tokens_a & tokens_b) / len(union)


def ngram_similarity(a: str, b: str, n: int = 2) -> float:
    """Jaccard overlap of character n-gram multiset supports.

    Strings shorter than ``n`` fall back to exact comparison.
    """
    if n < 1:
        raise LinkageError(f"n must be >= 1, got {n}")
    if a == b:
        return 1.0
    if len(a) < n or len(b) < n:
        return 0.0
    grams_a = {a[i : i + n] for i in range(len(a) - n + 1)}
    grams_b = {b[i : i + n] for i in range(len(b) - n + 1)}
    return len(grams_a & grams_b) / len(grams_a | grams_b)
