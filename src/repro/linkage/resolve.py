"""Joint record linkage and truth discovery (section 4, "Record linkage").

"In practice we often need to simultaneously conduct truth discovery and
record linkage to distinguish between alternative representations and
false values. … A challenge is that the boundary between a wrong value
and an alternative representation is often vague."

The resolver implements the iterative strategy the paper proposes:

1. **cluster** each object's raw values by representation similarity,
   mapping each cluster to a canonical value (high-similarity pairs are
   always variants);
2. **discover** truth over the canonicalised dataset (DEPEN by default,
   so dependence knowledge feeds linkage — copier-supported spellings do
   not fake independent support);
3. **re-examine the gray zone**: a pair of clusters with middling
   similarity is merged only when the weaker cluster's *discounted*
   support is a small fraction of the stronger's — weakly and
   dependently supported near-variants are spelling mistakes
   ("Xing Dong"), while a well-supported independent near-variant is a
   genuine competing value;
4. repeat discovery on the refined clustering.

The output labels every raw value as the chosen truth, an ``alternative``
representation of it, or a ``wrong`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, Value
from repro.exceptions import LinkageError
from repro.linkage.clustering import (
    SimilarityFn,
    canonicalisation_map,
    choose_representative,
)
from repro.truth.base import TruthDiscovery, TruthResult
from repro.truth.depen import Depen


@dataclass
class ResolutionResult:
    """Output of joint linkage + truth discovery."""

    truth: TruthResult
    canonical_map: dict[tuple[ObjectId, Value], Value]
    labels: dict[tuple[ObjectId, Value], str] = field(default_factory=dict)

    def label(self, obj: ObjectId, raw_value: Value) -> str:
        """``truth`` / ``alternative`` / ``wrong`` for one raw value."""
        key = (obj, raw_value)
        if key not in self.labels:
            raise LinkageError(f"value {raw_value!r} of {obj!r} was not resolved")
        return self.labels[key]


class JointResolver:
    """Iterative linkage + truth discovery with a gray-zone merge rule.

    Parameters
    ----------
    similarity:
        Symmetric value similarity in [0, 1].
    merge_threshold:
        Similarity at or above which values are always variants.
    gray_threshold:
        Lower edge of the gray zone; pairs between the thresholds are
        merged only by the support rule.
    support_ratio:
        A gray-zone cluster is absorbed when its discounted support is at
        most this fraction of the dominant cluster's.
    discovery:
        The truth-discovery algorithm to run (default: DEPEN).
    """

    def __init__(
        self,
        similarity: SimilarityFn,
        merge_threshold: float = 0.85,
        gray_threshold: float = 0.65,
        support_ratio: float = 0.34,
        discovery: TruthDiscovery | None = None,
    ) -> None:
        if not 0.0 < gray_threshold <= merge_threshold <= 1.0:
            raise LinkageError(
                "need 0 < gray_threshold <= merge_threshold <= 1, got "
                f"{gray_threshold} and {merge_threshold}"
            )
        if not 0.0 < support_ratio < 1.0:
            raise LinkageError(
                f"support_ratio must be in (0, 1), got {support_ratio}"
            )
        self.similarity = similarity
        self.merge_threshold = merge_threshold
        self.gray_threshold = gray_threshold
        self.support_ratio = support_ratio
        self.discovery = discovery or Depen()

    def resolve(self, dataset: ClaimDataset) -> ResolutionResult:
        """Run the full pipeline on a raw snapshot dataset."""
        # Pass 1: hard clustering and discovery on canonical values.
        mapping = self._initial_mapping(dataset)
        canonical = dataset.map_values(mapping)
        result = self.discovery.discover(canonical)

        # Pass 2: gray-zone merges informed by discounted support.
        refined = self._gray_zone_mapping(dataset, mapping, result)
        if refined != mapping:
            mapping = refined
            canonical = dataset.map_values(mapping)
            result = self.discovery.discover(canonical)

        labels = self._label(dataset, mapping, result)
        return ResolutionResult(
            truth=result, canonical_map=mapping, labels=labels
        )

    # ------------------------------------------------------------------

    def _initial_mapping(
        self, dataset: ClaimDataset
    ) -> dict[tuple[ObjectId, Value], Value]:
        mapping: dict[tuple[ObjectId, Value], Value] = {}
        for obj in dataset.objects:
            values = dataset.values_for(obj)
            support = {
                value: len(providers) for value, providers in values.items()
            }
            local = canonicalisation_map(
                list(values),
                self.similarity,
                self.merge_threshold,
                support,
            )
            for raw, canonical in local.items():
                mapping[(obj, raw)] = canonical
        return mapping

    def _gray_zone_mapping(
        self,
        dataset: ClaimDataset,
        mapping: dict[tuple[ObjectId, Value], Value],
        result: TruthResult,
    ) -> dict[tuple[ObjectId, Value], Value]:
        refined = dict(mapping)
        for obj in dataset.objects:
            clusters: dict[Value, list[Value]] = {}
            for raw in dataset.values_for(obj):
                clusters.setdefault(mapping[(obj, raw)], []).append(raw)
            if len(clusters) < 2:
                continue
            supports = {
                canonical: self._discounted_support(dataset, obj, members, result)
                for canonical, members in clusters.items()
            }
            dominant = max(
                supports, key=lambda value: (supports[value], repr(value))
            )
            for canonical, members in clusters.items():
                if canonical == dominant:
                    continue
                sim = self.similarity(canonical, dominant)
                weak = supports[canonical] <= (
                    self.support_ratio * supports[dominant]
                )
                if self.gray_threshold <= sim < self.merge_threshold and weak:
                    for raw in members:
                        refined[(obj, raw)] = dominant
        return refined

    def _discounted_support(
        self,
        dataset: ClaimDataset,
        obj: ObjectId,
        members: list[Value],
        result: TruthResult,
    ) -> float:
        """Accuracy- and dependence-discounted support of a cluster."""
        providers = sorted(
            {
                source
                for raw in members
                for source in dataset.providers_of(obj, raw)
            },
            key=lambda s: (-result.accuracies.get(s, 0.5), s),
        )
        total = 0.0
        counted: list = []
        for source in providers:
            weight = result.accuracies.get(source, 0.5)
            if result.dependence is not None:
                weight *= result.dependence.independence_weight(
                    source, counted, copy_rate=0.8
                )
            total += weight
            counted.append(source)
        return total

    def _label(
        self,
        dataset: ClaimDataset,
        mapping: dict[tuple[ObjectId, Value], Value],
        result: TruthResult,
    ) -> dict[tuple[ObjectId, Value], str]:
        labels: dict[tuple[ObjectId, Value], str] = {}
        for obj in dataset.objects:
            winner = result.decisions.get(obj)
            for raw in dataset.values_for(obj):
                canonical = mapping[(obj, raw)]
                if canonical == winner:
                    labels[(obj, raw)] = (
                        "truth" if raw == winner else "alternative"
                    )
                else:
                    labels[(obj, raw)] = "wrong"
        return labels


def representative_for(
    values: list[Value], support: dict[Value, int] | None = None
) -> Value:
    """Convenience re-export of cluster representative selection."""
    return choose_representative(values, support)
