"""Author-name and author-list handling for the bookstore scenario.

Example 4.1 describes the dirt in real bookstore data: "the author lists
are formatted in various ways; there are misspellings, missing authors,
misordered authors, and wrong authors; extraction in itself can make
mistakes". This module provides the normalisation and similarity the
linkage layer uses to tell *alternative representations* of an author
list apart from *genuinely different* lists.

An author name is parsed into (first, last) parts, tolerating
``"Last, First"`` and ``"First Last"`` forms and initials; an author
list is a tuple of names, compared with an order-aware alignment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import LinkageError
from repro.linkage.strings import jaro_winkler_similarity

_WORD_RE = re.compile(r"[A-Za-z][A-Za-z'\-]*\.?")


@dataclass(frozen=True, slots=True)
class AuthorName:
    """A parsed author name: optional given names + a family name."""

    first: tuple[str, ...]
    last: str

    def canonical(self) -> str:
        """Canonical display form: ``First [Middle] Last`` lower-cased."""
        parts = [*self.first, self.last]
        return " ".join(parts)

    def initials(self) -> tuple[str, ...]:
        """First letters of the given names."""
        return tuple(name[0] for name in self.first if name)


def parse_author(raw: str) -> AuthorName:
    """Parse one author string into an :class:`AuthorName`.

    Handles ``"Ullman, Jeffrey D."``, ``"Jeffrey D. Ullman"`` and
    ``"J. Ullman"``. Raises :class:`~repro.exceptions.LinkageError` for
    strings with no alphabetic content.
    """
    text = raw.strip()
    if "," in text:
        last_part, _, first_part = text.partition(",")
        last_words = _words(last_part)
        first_words = _words(first_part)
    else:
        words = _words(text)
        if not words:
            raise LinkageError(f"cannot parse author name {raw!r}")
        last_words = [words[-1]]
        first_words = words[:-1]
    if not last_words:
        raise LinkageError(f"cannot parse author name {raw!r}")
    return AuthorName(
        first=tuple(w.rstrip(".").lower() for w in first_words),
        last=last_words[-1].rstrip(".").lower(),
    )


def _words(text: str) -> list[str]:
    return _WORD_RE.findall(text)


def name_similarity(a: str, b: str) -> float:
    """Similarity of two author-name strings in [0, 1].

    Last names carry most of the weight (Jaro–Winkler); given names are
    compared leniently — an initial matches any full name starting with
    it ("J." vs "Jeffrey"), and a missing given name is only a mild
    penalty. Unparseable inputs fall back to whole-string Jaro–Winkler.
    """
    if a == b:
        return 1.0
    try:
        name_a = parse_author(a)
        name_b = parse_author(b)
    except LinkageError:
        return jaro_winkler_similarity(a.lower(), b.lower())

    last_sim = jaro_winkler_similarity(name_a.last, name_b.last)
    first_sim = _given_names_similarity(name_a.first, name_b.first)
    return 0.7 * last_sim + 0.3 * first_sim


def _given_names_similarity(
    first_a: tuple[str, ...], first_b: tuple[str, ...]
) -> float:
    if not first_a and not first_b:
        return 1.0
    if not first_a or not first_b:
        return 0.6  # one side omits given names: mildly suspicious only
    pairs = min(len(first_a), len(first_b))
    total = 0.0
    for ga, gb in zip(first_a, first_b):
        if ga == gb:
            total += 1.0
        elif len(ga) == 1 or len(gb) == 1:
            # Initial vs full name: compatible if the letters agree.
            total += 0.9 if ga[0] == gb[0] else 0.0
        else:
            total += jaro_winkler_similarity(ga, gb)
    return total / pairs


def author_list_similarity(
    list_a: tuple[str, ...], list_b: tuple[str, ...]
) -> float:
    """Order-aware similarity of two author lists in [0, 1].

    Greedy best-pair alignment of the names, scored by mean matched
    similarity, with two penalties:

    * unmatched authors (missing/extra) reduce the mean by counting as 0;
    * matched pairs at different positions lose 10% per displaced pair
      (misordering is a common corruption but weaker evidence of a
      different list than a missing author).
    """
    if list_a == list_b:
        return 1.0
    if not list_a or not list_b:
        return 0.0

    candidates = [
        (name_similarity(a, b), i, j)
        for i, a in enumerate(list_a)
        for j, b in enumerate(list_b)
    ]
    candidates.sort(key=lambda triple: (-triple[0], triple[1], triple[2]))
    used_a: set[int] = set()
    used_b: set[int] = set()
    matched: list[tuple[float, int, int]] = []
    for sim, i, j in candidates:
        if i in used_a or j in used_b or sim < 0.5:
            continue
        used_a.add(i)
        used_b.add(j)
        matched.append((sim, i, j))

    total_slots = max(len(list_a), len(list_b))
    score = sum(sim for sim, _, _ in matched) / total_slots
    displaced = sum(1 for _, i, j in matched if i != j)
    score *= 1.0 - 0.1 * min(displaced, 5) / max(1, len(matched))
    return max(0.0, min(1.0, score))


def canonical_author_list(list_a: tuple[str, ...]) -> tuple[str, ...]:
    """Normalise an author list to canonical lower-cased name forms."""
    canonical: list[str] = []
    for raw in list_a:
        try:
            canonical.append(parse_author(raw).canonical())
        except LinkageError:
            canonical.append(raw.strip().lower())
    return tuple(canonical)
