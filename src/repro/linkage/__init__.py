"""Record linkage: string similarity, author lists, clustering, resolution."""

from repro.linkage.authors import (
    AuthorName,
    author_list_similarity,
    canonical_author_list,
    name_similarity,
    parse_author,
)
from repro.linkage.clustering import (
    canonicalisation_map,
    choose_representative,
    cluster_values,
)
from repro.linkage.resolve import JointResolver, ResolutionResult
from repro.linkage.strings import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_similarity,
    token_jaccard,
)

__all__ = [
    "AuthorName",
    "JointResolver",
    "ResolutionResult",
    "author_list_similarity",
    "canonical_author_list",
    "canonicalisation_map",
    "choose_representative",
    "cluster_values",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "name_similarity",
    "ngram_similarity",
    "parse_author",
    "token_jaccard",
]
