"""Supervised execution: deadlines, retries, and a degradation ladder.

:class:`SupervisedExecutor` wraps any :class:`~repro.exec.base.ShardExecutor`
and turns the three ad-hoc recovery idioms that used to live in
``evidence.py``, ``pool.py`` and ``sharding.py`` into one policy
surface (:class:`SupervisorPolicy`, populated from
:class:`~repro.core.params.DependenceParams`):

- **Deadlines** catch *hangs*, not just deaths. The resident pool
  enforces its own per-batch deadline natively (a worker that misses
  it is reaped like a crashed one); for the stateless process pool a
  watchdog thread calls :meth:`~repro.exec.pool.PoolExecutor.terminate`
  when the batch blows its budget and raises
  :class:`TaskDeadlineExceeded` — retryable like any worker death.
- **Bounded retries with backoff + jitter** absorb transient failures:
  ``ResidentWorkerLost``, ``BrokenProcessPool``, deadline hits, pipe
  errors and injected corruption are retried up to
  ``max_retries`` times with exponentially growing, jittered sleeps.
- **State re-adoption**: given a ``state_provider`` (a callable
  packing named shards' state from the source of truth — the
  evidence cache's ``_resident_pack_shards``), the supervisor tracks
  which shards the workers hold and re-ships exactly the lost ones
  before retrying, so worker loss is invisible to the caller
  (``handles_worker_loss`` advertises this to the evidence layer).
- **The degradation ladder** ``resident → process → numpy → serial``
  kicks in once retries are exhausted: the broken transport is torn
  down and the batch re-runs on the next rung (straight to the
  in-process serial executor for stateful work — it supports resident
  tasks against an ordinary dict, and the state provider re-adopts
  there on first touch). Every backend is merge-canonicalised to
  bit-for-bit identical results, so degrading changes *where* work
  runs, never *what* it returns. Each step emits an
  :class:`~repro.exceptions.ExecutorFailureWarning`.

The wrapper is transparent otherwise: capabilities, byte accounting
(cumulative across replaced transports) and incidental attributes like
``worker_pids`` delegate to the current inner executor.
"""

from __future__ import annotations

import random
import threading
import time
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ExecutorFailureWarning, ParameterError
from repro.exec.base import SerialExecutor, ShardExecutor
from repro.exec.resident import ResidentWorkerLost
from repro.exec.tasks import task_is_stateful

__all__ = [
    "SupervisedExecutor",
    "SupervisorPolicy",
    "TaskDeadlineExceeded",
]

#: The degradation order for stateless work. Stateful work (or any
#: executor with a state provider) degrades straight to ``serial`` —
#: the in-process executor is the reference implementation of the
#: stateful contract, so resident state can be re-adopted there.
LADDER = ("resident", "process", "numpy", "serial")


class TaskDeadlineExceeded(RuntimeError):
    """A task batch exceeded its wall-clock deadline and was killed."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Recovery policy applied by :class:`SupervisedExecutor`.

    ``max_retries`` bounds how often one batch is retried on the same
    rung before degrading (or giving up); ``task_deadline`` is the
    per-batch wall-clock budget in seconds (``None`` disables deadline
    enforcement); ``degrade_on_failure`` enables the backend ladder.
    The backoff between retries is
    ``base * factor**(attempt-1) * (1 + jitter * U[0,1))`` seconds,
    with the jitter draw seeded so runs are reproducible.
    """

    max_retries: int = 2
    task_deadline: float | None = None
    degrade_on_failure: bool = True
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ParameterError(
                f"task_deadline must be > 0 or None, got {self.task_deadline}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ParameterError(
                "need backoff_base >= 0 and backoff_factor >= 1, got "
                f"base={self.backoff_base}, factor={self.backoff_factor}"
            )
        if self.backoff_jitter < 0:
            raise ParameterError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )

    @classmethod
    def from_params(cls, params) -> "SupervisorPolicy":
        """Lift the supervision fields off a ``DependenceParams``."""
        return cls(
            max_retries=params.max_retries,
            task_deadline=params.task_deadline,
            degrade_on_failure=params.degrade_on_failure,
        )


class SupervisedExecutor(ShardExecutor):
    """Policy-enforcing wrapper around a concrete :class:`ShardExecutor`.

    Parameters
    ----------
    inner:
        The executor doing the actual work (owned: closed and replaced
        by the supervisor).
    backend:
        The policy name ``inner`` serves (``"resident"``, ``"process"``,
        ...) — the rung the ladder starts from.
    num_workers / persistent:
        Reused when the ladder builds a replacement executor.
    policy:
        The :class:`SupervisorPolicy`; defaults are production-safe.
    state_provider:
        Optional ``callable(sorted_shard_ids) -> {shard_id: state}``
        packing shard state from the source of truth. Required for
        transparent worker-loss recovery on stateful tasks; without it
        :class:`~repro.exec.resident.ResidentWorkerLost` propagates to
        the caller exactly as with a raw executor.
    sleep:
        Injectable sleep for tests (defaults to :func:`time.sleep`).
    """

    # Exceptions worth retrying: transports break loudly and
    # recoverably. Anything else (unknown task, parameter errors,
    # data errors) is a caller bug and propagates immediately.
    _RETRYABLE = (BrokenProcessPool, EOFError, OSError, RuntimeError)

    #: After a deadline kill, how long to wait for the watchdogged
    #: thread to observe its broken pool before moving on.
    _WATCHDOG_GRACE = 5.0

    def __init__(
        self,
        inner: ShardExecutor,
        *,
        backend: str,
        num_workers: int = 1,
        persistent: bool = False,
        policy: SupervisorPolicy | None = None,
        state_provider: Callable[[Sequence[int]], Mapping[int, Any]] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self._inner = inner
        self._backend = backend
        self._original_backend = backend
        self._num_workers = num_workers
        self._persistent = persistent
        self.policy = policy or SupervisorPolicy()
        self._state_provider = state_provider
        self._sleep = sleep or time.sleep
        self._rng = random.Random(self.policy.seed)
        self._adopted: set[int] = set()
        self._bytes_base = 0
        self._stats = {
            "retries": 0,
            "degrades": 0,
            "deadline_hits": 0,
            "worker_losses": 0,
            "readoptions": 0,
        }
        self._apply_deadline()

    # -- introspection ---------------------------------------------------

    @property
    def capabilities(self):  # type: ignore[override]
        return self._inner.capabilities

    @property
    def handles_worker_loss(self) -> bool:
        """Whether lost resident state is re-shipped and retried here."""
        return self._state_provider is not None

    @property
    def backend(self) -> str:
        """The rung currently executing (may differ after degradation)."""
        return self._backend

    @property
    def inner(self) -> ShardExecutor:
        """The executor currently doing the work."""
        return self._inner

    @property
    def bytes_shipped(self) -> int:
        # Cumulative across transport replacements: a degrade resets
        # the inner executor's counter, not the caller's accounting.
        return self._bytes_base + self._inner.bytes_shipped

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def probe(self) -> bool:
        """Cheap health probe: are all spawned workers still alive?"""
        pids = getattr(self._inner, "worker_pids", None)
        alive = getattr(self._inner, "alive_workers", None)
        if pids is not None and alive is not None:
            return alive() == len(pids())
        return True

    def health(self) -> dict:
        """Counters and current state for a serving ``health()`` surface."""
        return {
            "backend": self._backend,
            "original_backend": self._original_backend,
            "degraded": self._backend != self._original_backend,
            "healthy": self.probe(),
            "adopted_shards": len(self._adopted),
            **self._stats,
        }

    def __getattr__(self, name: str):
        # Transparent delegation for incidental surface (worker_pids,
        # alive_workers, task_deadline...). Underscored names never
        # delegate — they would mask genuine AttributeErrors during
        # construction.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self._inner.close()

    def terminate(self) -> None:
        terminate = getattr(self._inner, "terminate", None)
        if terminate is not None:
            terminate()
        else:
            self._inner.close()

    # -- execution -------------------------------------------------------

    def submit(self, shard_id: int, task: str | Callable, delta: Any) -> Any:
        return self._execute(
            task,
            {shard_id},
            lambda: self._inner.submit(shard_id, task, delta),
        )

    def run(self, task: str | Callable, deltas: Sequence[Any]) -> list[Any]:
        deltas = list(deltas)
        return self._execute(
            task,
            set(range(len(deltas))),
            lambda: self._inner.run(task, deltas),
        )

    def run_shards(
        self, task: str | Callable, deltas: Mapping[int, Any]
    ) -> dict[int, Any]:
        deltas = dict(deltas)
        return self._execute(
            task,
            set(deltas),
            lambda: self._inner.run_shards(task, deltas),
        )

    def _execute(self, task, shard_ids: set, call: Callable[[], Any]):
        stateful = task_is_stateful(task)
        adopting = task == "resident.adopt"
        attempt = 0
        while True:
            try:
                if stateful and not adopting and self.handles_worker_loss:
                    self._ensure_adopted(shard_ids)
                result = self._call_with_deadline(call)
                if adopting:
                    self._adopted |= shard_ids
                return result
            except ResidentWorkerLost as exc:
                if not self.handles_worker_loss:
                    # Without a state provider the caller owns recovery
                    # (the raw-executor contract); retrying here would
                    # just lose the same state again.
                    raise
                self._adopted.difference_update(exc.shard_ids)
                self._stats["worker_losses"] += 1
                failure: BaseException = exc
            except TaskDeadlineExceeded as exc:
                self._stats["deadline_hits"] += 1
                failure = exc
            except self._RETRYABLE as exc:
                failure = exc
            attempt += 1
            if attempt > self.policy.max_retries:
                if self.policy.degrade_on_failure and self._degrade(
                    stateful, failure
                ):
                    attempt = 0
                    continue
                raise failure
            self._stats["retries"] += 1
            self._backoff(attempt)

    def _ensure_adopted(self, shard_ids: set) -> None:
        missing = shard_ids - self._adopted
        if not missing:
            return
        states = self._state_provider(sorted(missing))
        self._call_with_deadline(
            lambda: self._inner.run_shards("resident.adopt", states)
        )
        self._adopted |= set(states)
        self._stats["readoptions"] += 1

    def _backoff(self, attempt: int) -> None:
        policy = self.policy
        delay = policy.backoff_base * policy.backoff_factor ** (attempt - 1)
        delay *= 1.0 + policy.backoff_jitter * self._rng.random()
        if delay > 0:
            self._sleep(delay)

    # -- deadline enforcement --------------------------------------------

    def _apply_deadline(self) -> None:
        # The resident pool enforces deadlines natively (poll-based
        # recv); push the budget down so a hung worker is reaped at
        # the transport, where its state loss can be reported exactly.
        if hasattr(self._inner, "task_deadline"):
            self._inner.task_deadline = self.policy.task_deadline

    def _call_with_deadline(self, call: Callable[[], Any]):
        deadline = self.policy.task_deadline
        inner = self._inner
        if (
            deadline is None
            or hasattr(inner, "task_deadline")  # enforced natively
            or not hasattr(inner, "terminate")  # in-process: nothing to kill
        ):
            return call()
        box: dict[str, Any] = {}
        done = threading.Event()

        def runner() -> None:
            try:
                box["result"] = call()
            except BaseException as exc:
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, name="repro-task-watchdog", daemon=True
        )
        thread.start()
        if not done.wait(deadline):
            # The batch is wedged. Kill the pool out from under it —
            # that breaks the blocked map() call, so the worker thread
            # unwinds promptly instead of leaking.
            inner.terminate()
            done.wait(self._WATCHDOG_GRACE)
            raise TaskDeadlineExceeded(
                f"task batch exceeded its {deadline}s deadline on the "
                f"{self._backend!r} backend; workers were killed"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    # -- degradation ladder ----------------------------------------------

    def _next_backend(self, stateful: bool) -> str | None:
        if self._backend == "serial":
            return None
        if stateful or self._state_provider is not None:
            return "serial"
        try:
            position = LADDER.index(self._backend)
        except ValueError:
            return "serial"
        return LADDER[position + 1] if position + 1 < len(LADDER) else None

    def _make_inner(self, backend: str) -> ShardExecutor:
        from repro.exec.pool import PoolExecutor
        from repro.exec.resident import ResidentPoolExecutor

        if backend == "process":
            return PoolExecutor(self._num_workers, persistent=self._persistent)
        if backend == "resident":
            return ResidentPoolExecutor(self._num_workers)
        return SerialExecutor()

    def _degrade(self, stateful: bool, failure: BaseException) -> bool:
        target = self._next_backend(stateful)
        if target is None:
            return False
        warnings.warn(
            f"{self._backend!r} backend failed after "
            f"{self.policy.max_retries} retries "
            f"({type(failure).__name__}: {failure}); degrading to "
            f"{target!r} — results are unaffected (all backends are "
            "bit-for-bit equivalent), only the transport changes",
            ExecutorFailureWarning,
            stacklevel=4,
        )
        self._bytes_base += self._inner.bytes_shipped
        try:
            self.terminate()
        except Exception:
            pass
        self._inner = self._make_inner(target)
        self._backend = target
        # Worker-held state died with the old transport; the provider
        # re-adopts lazily on the next stateful call.
        self._adopted.clear()
        self._stats["degrades"] += 1
        self._apply_deadline()
        return True
