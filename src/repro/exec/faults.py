"""Deterministic fault injection at task boundaries.

Robustness code is only trustworthy if its failure paths run — this
module makes workers fail *on schedule*. A :class:`FaultPlan` is a
seeded list of :class:`FaultSpec` clauses, each naming a fault kind, a
task-name pattern and a trigger; the plan hooks
:func:`repro.exec.tasks.resolve_task`, so every executor — serial
in-process, the stateless pool, resident workers — hits the same
boundary without any executor knowing faults exist.

The schedule travels through the ``REPRO_FAULTS`` environment variable
(inherited by worker processes under both fork and spawn), so tests,
benches and the CI chaos job configure it the same way::

    REPRO_FAULTS="seed=42;kill:resident.sweep:every=25;hang:sweep:at=3:secs=30"

Grammar: clauses separated by ``;``. The first clause may be
``seed=N`` (default 0). Every other clause is
``kind:pattern[:key=val]*`` where

``kind``
    ``kill`` (SIGKILL the worker process), ``hang`` (sleep ``secs``,
    default 3600 — long enough that only a deadline ends it), ``slow``
    (sleep ``secs``, default 0.01, then run normally) or ``corrupt``
    (raise :class:`FaultInjected`, simulating a payload the worker
    cannot decode).
``pattern``
    substring-matched against the registry task name (``sweep``
    matches ``evidence.sweep_shard`` and ``resident.sweep``).
``at=N`` / ``every=N`` / ``rate=F``
    fire on the Nth matching call in this process, on every Nth, or
    with probability ``F`` per call. Rate draws hash
    ``seed:clause:task:count`` with blake2b, so they are reproducible
    regardless of ``PYTHONHASHSEED``. Exactly one trigger per clause.
``secs=F``
    sleep length for ``hang``/``slow``.
``times=N``
    stop firing after N fires (per process).
``scope=worker|any``
    ``worker`` (the default) only fires in spawned worker processes —
    a ``kill`` in the test runner itself is never what anyone wants;
    ``any`` fires everywhere (for exercising the in-process path with
    non-lethal kinds).

Counters are per process and per clause: a respawned worker starts
fresh, which is what lets a supervised retry of the same batch make
progress past an ``at=N`` fault.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ParameterError

__all__ = ["FaultInjected", "FaultSpec", "FaultPlan", "active_plan"]

ENV_VAR = "REPRO_FAULTS"

_KINDS = ("kill", "hang", "slow", "corrupt")
_SCOPES = ("worker", "any")


class FaultInjected(RuntimeError):
    """An injected fault fired (the ``corrupt`` kind surfaces as this)."""


def _in_worker_process() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class FaultSpec:
    """One fault clause: what to do, where, and when."""

    kind: str
    pattern: str
    at: int | None = None
    every: int | None = None
    rate: float | None = None
    seconds: float | None = None
    times: int | None = None
    scope: str = "worker"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ParameterError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not self.pattern:
            raise ParameterError("fault pattern must be non-empty")
        triggers = sum(
            value is not None for value in (self.at, self.every, self.rate)
        )
        if triggers != 1:
            raise ParameterError(
                f"fault clause {self.kind}:{self.pattern} needs exactly one "
                "trigger (at=, every= or rate=)"
            )
        if self.at is not None and self.at < 1:
            raise ParameterError(f"at must be >= 1, got {self.at}")
        if self.every is not None and self.every < 1:
            raise ParameterError(f"every must be >= 1, got {self.every}")
        if self.rate is not None and not 0.0 < self.rate <= 1.0:
            raise ParameterError(f"rate must be in (0, 1], got {self.rate}")
        if self.seconds is not None and self.seconds < 0:
            raise ParameterError(f"secs must be >= 0, got {self.seconds}")
        if self.times is not None and self.times < 1:
            raise ParameterError(f"times must be >= 1, got {self.times}")
        if self.scope not in _SCOPES:
            raise ParameterError(
                f"scope must be one of {_SCOPES}, got {self.scope!r}"
            )


def _draw(seed: int, clause: int, name: str, count: int) -> float:
    """Deterministic uniform in [0, 1) — independent of PYTHONHASHSEED."""
    digest = hashlib.blake2b(
        f"{seed}:{clause}:{name}:{count}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultPlan:
    """A seeded fault schedule with per-process trigger counters."""

    def __init__(self, specs: tuple[FaultSpec, ...] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        # calls[i] counts this process's matching calls for clause i;
        # fires[i] counts how often it actually fired (for times=).
        self._calls = [0] * len(self.specs)
        self._fires = [0] * len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, schedule: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        seed = 0
        specs: list[FaultSpec] = []
        clauses = [c.strip() for c in schedule.split(";") if c.strip()]
        for position, clause in enumerate(clauses):
            if position == 0 and clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise ParameterError(
                        f"{ENV_VAR} seed must be an integer, got {clause!r}"
                    ) from None
                continue
            parts = clause.split(":")
            if len(parts) < 2:
                raise ParameterError(
                    f"{ENV_VAR} clause {clause!r} must be "
                    "kind:pattern[:key=val]*"
                )
            kind, pattern = parts[0], parts[1]
            kwargs: dict[str, object] = {}
            for part in parts[2:]:
                key, sep, raw = part.partition("=")
                if not sep:
                    raise ParameterError(
                        f"{ENV_VAR} option {part!r} in clause {clause!r} "
                        "must be key=value"
                    )
                try:
                    if key in ("at", "every", "times"):
                        kwargs[key] = int(raw)
                    elif key == "rate":
                        kwargs[key] = float(raw)
                    elif key == "secs":
                        kwargs["seconds"] = float(raw)
                    elif key == "scope":
                        kwargs["scope"] = raw
                    else:
                        raise ParameterError(
                            f"{ENV_VAR} unknown option {key!r} in clause "
                            f"{clause!r} (at/every/rate/secs/times/scope)"
                        )
                except ValueError:
                    raise ParameterError(
                        f"{ENV_VAR} option {part!r} in clause {clause!r} "
                        "has a malformed value"
                    ) from None
            specs.append(FaultSpec(kind=kind, pattern=pattern, **kwargs))
        return cls(tuple(specs), seed)

    def _should_fire(self, index: int, spec: FaultSpec, name: str) -> bool:
        if spec.pattern not in name:
            return False
        if spec.scope == "worker" and not _in_worker_process():
            return False
        self._calls[index] += 1
        if spec.times is not None and self._fires[index] >= spec.times:
            return False
        count = self._calls[index]
        if spec.at is not None:
            fire = count == spec.at
        elif spec.every is not None:
            fire = count % spec.every == 0
        else:
            fire = _draw(self.seed, index, name, count) < spec.rate
        if fire:
            self._fires[index] += 1
        return fire

    def fire(self, name: str) -> FaultSpec | None:
        """Evaluate every clause against one task call; act on the first hit.

        ``kill``/``hang``/``slow`` act directly (the latter two return
        so the wrapped task still runs); ``corrupt`` raises
        :class:`FaultInjected`. Returns the spec that fired, if any.
        """
        for index, spec in enumerate(self.specs):
            if not self._should_fire(index, spec, name):
                continue
            if spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.kind == "hang":
                time.sleep(3600.0 if spec.seconds is None else spec.seconds)
            elif spec.kind == "slow":
                time.sleep(0.01 if spec.seconds is None else spec.seconds)
            else:  # corrupt
                raise FaultInjected(
                    f"injected payload corruption in task {name!r}"
                )
            return spec
        return None

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Wrap a resolved task so the plan fires at its call boundary."""
        if not any(spec.pattern in name for spec in self.specs):
            return fn

        def faulted(*args, **kwargs):
            self.fire(name)
            return fn(*args, **kwargs)

        return faulted


_EMPTY = FaultPlan()
_PLAN: FaultPlan = _EMPTY
_PLAN_SOURCE: str | None = None


def active_plan() -> FaultPlan:
    """The process-wide plan parsed from ``REPRO_FAULTS``.

    Re-parses lazily whenever the variable's value changes (so a test
    setting it via monkeypatch is picked up without any reset call);
    counters restart on re-parse, matching the fresh counters a newly
    spawned worker gets.
    """
    global _PLAN, _PLAN_SOURCE
    source = os.environ.get(ENV_VAR) or None
    if source != _PLAN_SOURCE:
        _PLAN = FaultPlan.parse(source) if source else _EMPTY
        _PLAN_SOURCE = source
    return _PLAN
