"""Execution layer: transport-agnostic shard executors.

The dependence layer's planner/payload/merge contract
(:mod:`repro.dependence.sharding`) talks to workers only through the
:class:`ShardExecutor` interface defined here. Three transports ship:

``SerialExecutor``
    in-process, zero serialization — backs ``serial`` and ``numpy``;
``PoolExecutor``
    stateless ``ProcessPoolExecutor`` fan-out — backs ``process``;
``ResidentPoolExecutor``
    pinned long-lived workers holding per-shard packed records, fed
    dirty-range deltas — backs ``resident``.

Pick one with :func:`make_executor`; policy objects
(:class:`repro.dependence.sharding.SweepConfig`) call it for you.
"""

from __future__ import annotations

from repro.exec.base import (
    ExecutorCapabilities,
    SerialExecutor,
    ShardExecutor,
    discard_broken_pool,
)
from repro.exec.faults import FaultInjected, FaultPlan, FaultSpec, active_plan
from repro.exec.pool import PoolExecutor
from repro.exec.resident import ResidentPoolExecutor, ResidentWorkerLost
from repro.exec.supervisor import (
    SupervisedExecutor,
    SupervisorPolicy,
    TaskDeadlineExceeded,
)
from repro.exec.tasks import TASKS, resolve_task, task_is_stateful

__all__ = [
    "ExecutorCapabilities",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "PoolExecutor",
    "ResidentPoolExecutor",
    "ResidentWorkerLost",
    "SerialExecutor",
    "ShardExecutor",
    "SupervisedExecutor",
    "SupervisorPolicy",
    "TASKS",
    "TaskDeadlineExceeded",
    "active_plan",
    "discard_broken_pool",
    "make_executor",
    "resolve_task",
    "task_is_stateful",
]


def make_executor(
    backend: str,
    num_workers: int = 1,
    *,
    persistent: bool = False,
    supervise: SupervisorPolicy | None = None,
    state_provider=None,
) -> ShardExecutor:
    """Build the executor serving a parallel-backend policy value.

    ``serial`` and ``numpy`` share the in-process executor (the
    backend only selects the kernels inside the task); ``process``
    gets the stateless pool (persistent or ephemeral); ``resident``
    gets the pinned resident-state pool, which is persistent by
    construction.

    Passing ``supervise`` (a :class:`SupervisorPolicy`) wraps the
    process-crossing transports in a :class:`SupervisedExecutor`:
    per-batch deadlines, bounded retries with backoff, and the
    degradation ladder. ``state_provider`` (see
    :class:`SupervisedExecutor`) additionally makes worker loss on
    stateful tasks invisible to the caller. In-process executors run
    unsupervised — there is no transport to fail.
    """
    if backend == "process":
        inner: ShardExecutor = PoolExecutor(num_workers, persistent=persistent)
    elif backend == "resident":
        inner = ResidentPoolExecutor(num_workers)
    elif backend in ("serial", "numpy"):
        return SerialExecutor()
    else:
        raise ValueError(f"unknown parallel backend {backend!r}")
    if supervise is None:
        return inner
    return SupervisedExecutor(
        inner,
        backend=backend,
        num_workers=num_workers,
        persistent=persistent,
        policy=supervise,
        state_provider=state_provider,
    )
