"""Execution layer: transport-agnostic shard executors.

The dependence layer's planner/payload/merge contract
(:mod:`repro.dependence.sharding`) talks to workers only through the
:class:`ShardExecutor` interface defined here. Three transports ship:

``SerialExecutor``
    in-process, zero serialization — backs ``serial`` and ``numpy``;
``PoolExecutor``
    stateless ``ProcessPoolExecutor`` fan-out — backs ``process``;
``ResidentPoolExecutor``
    pinned long-lived workers holding per-shard packed records, fed
    dirty-range deltas — backs ``resident``.

Pick one with :func:`make_executor`; policy objects
(:class:`repro.dependence.sharding.SweepConfig`) call it for you.
"""

from __future__ import annotations

from repro.exec.base import (
    ExecutorCapabilities,
    SerialExecutor,
    ShardExecutor,
)
from repro.exec.pool import PoolExecutor
from repro.exec.resident import ResidentPoolExecutor, ResidentWorkerLost
from repro.exec.tasks import TASKS, resolve_task, task_is_stateful

__all__ = [
    "ExecutorCapabilities",
    "PoolExecutor",
    "ResidentPoolExecutor",
    "ResidentWorkerLost",
    "SerialExecutor",
    "ShardExecutor",
    "TASKS",
    "make_executor",
    "resolve_task",
    "task_is_stateful",
]


def make_executor(
    backend: str, num_workers: int = 1, *, persistent: bool = False
) -> ShardExecutor:
    """Build the executor serving a parallel-backend policy value.

    ``serial`` and ``numpy`` share the in-process executor (the
    backend only selects the kernels inside the task); ``process``
    gets the stateless pool (persistent or ephemeral); ``resident``
    gets the pinned resident-state pool, which is persistent by
    construction.
    """
    if backend == "process":
        return PoolExecutor(num_workers, persistent=persistent)
    if backend == "resident":
        return ResidentPoolExecutor(num_workers)
    if backend in ("serial", "numpy"):
        return SerialExecutor()
    raise ValueError(f"unknown parallel backend {backend!r}")
