"""Resident-worker pool: per-shard state lives in the workers.

Each worker is a long-lived process pinned to a fixed set of shards
(``shard_id % num_workers``) and connected to the parent by a duplex
pipe. The parent serializes every request itself —
``pickle.dumps((task, shard_id, delta))`` + ``send_bytes`` — so
:attr:`ResidentPoolExecutor.bytes_shipped` counts exactly what crossed
the transport; this is the number the ≥5x delta-shipping guarantee is
measured against.

A worker's loop is a miniature RPC server: receive a request, resolve
the task name against :mod:`repro.exec.tasks`, apply it (stateful
tasks get the worker's ``{shard_id: state}`` mapping), send back
``("ok", result)`` or ``("err", message)``.

Crash handling: a dead worker is detected by a failed send or receive.
The executor respawns it immediately, but its resident shard state is
gone — the batch raises :exc:`ResidentWorkerLost` naming the lost
shards so the caller (which owns the source of truth) can re-ship
their state and retry. All resident tasks are idempotent (``adopt``
replaces, ``delta`` replaces rows, ``sweep`` is pure), so retrying a
whole batch after re-shipping is always safe. Crashes during
*stateless* tasks are retried transparently: there is no state to
rebuild.

The module-level functions at the bottom are the ``resident.*``
registry tasks. Shard state is a plain dict —
``{"objs": [...], "src": [[codes]], "entry": [[codes]],
"n_sources": int}`` — object-sorted, mirroring the parent's pack
order so a worker-side sweep is bit-for-bit the parent-side one.
"""

from __future__ import annotations

import pickle
from bisect import bisect_left
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Mapping, Sequence

from repro.exec.base import ExecutorCapabilities, ShardExecutor
from repro.exec.tasks import resolve_task, task_is_stateful

__all__ = ["ResidentPoolExecutor", "ResidentWorkerLost"]

_PROTO = pickle.HIGHEST_PROTOCOL


class ResidentWorkerLost(RuntimeError):
    """A worker died and took resident shard state with it.

    ``shard_ids`` lists the shards whose state must be re-shipped
    (via ``resident.adopt``) before the failed batch is retried.
    """

    def __init__(self, shard_ids: Sequence[int]):
        self.shard_ids = tuple(shard_ids)
        super().__init__(
            f"resident worker lost shard state for {list(self.shard_ids)}"
        )


def _worker_main(conn) -> None:
    """Worker process loop: recv request, apply task, send response."""
    state: dict[int, Any] = {}
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            return
        request = pickle.loads(raw)
        if request is None:  # shutdown sentinel
            conn.close()
            return
        task, shard_id, delta = request
        try:
            fn, stateful = resolve_task(task)
            result = fn(state, shard_id, delta) if stateful else fn(delta)
            response = ("ok", result)
        except BaseException as exc:  # report, don't die
            response = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send_bytes(pickle.dumps(response, protocol=_PROTO))
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Worker:
    process: Any
    conn: Any
    resident: set = field(default_factory=set)  # shard ids with state


class ResidentPoolExecutor(ShardExecutor):
    """Pipe-connected worker pool with worker-resident shard state."""

    capabilities = ExecutorCapabilities(
        resident_state=True, serialization="pickle"
    )

    _MAX_CRASH_RETRIES = 3

    #: Seconds each escalation step (terminate, then kill) waits for a
    #: worker to die before escalating further.
    _teardown_grace = 1.0

    def __init__(self, num_workers: int = 1):
        self.num_workers = max(1, int(num_workers))
        self._workers: list[_Worker | None] = [None] * self.num_workers
        self._bytes_shipped = 0
        self._closed = False
        #: Per-batch response deadline in seconds (``None`` = wait
        #: forever). A worker that has not answered within the budget is
        #: treated exactly like a dead one: reaped and respawned, its
        #: resident state reported lost. Set directly or via
        #: :class:`~repro.exec.supervisor.SupervisedExecutor`.
        self.task_deadline: float | None = None

    # -- introspection ---------------------------------------------------

    @property
    def bytes_shipped(self) -> int:
        return self._bytes_shipped

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_of(self, shard_id: int) -> int:
        """The fixed worker index a shard is pinned to."""
        return shard_id % self.num_workers

    def worker_pids(self) -> list[int]:
        """PIDs of the currently live workers (spawned lazily)."""
        return [
            w.process.pid for w in self._workers if w is not None
        ]

    def alive_workers(self) -> int:
        """How many spawned workers are actually alive right now."""
        return sum(
            1
            for w in self._workers
            if w is not None and w.process.is_alive()
        )

    # -- lifecycle -------------------------------------------------------

    def _spawn(self, index: int) -> _Worker:
        import multiprocessing as mp

        parent_conn, child_conn = mp.Pipe(duplex=True)
        process = mp.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        self._workers[index] = worker
        return worker

    def _ensure(self, index: int) -> _Worker:
        worker = self._workers[index]
        if worker is None:
            worker = self._spawn(index)
        return worker

    def _reap(self, process) -> None:
        """Make sure one worker process is dead: terminate, then kill.

        ``join(timeout)`` alone can leave a live child behind on a slow
        exit (a zombie holding its pipe and memory for the rest of the
        parent's life), so each escalation step gets a bounded grace
        period and the last resort is SIGKILL — which cannot be caught,
        so the final join always completes.
        """
        grace = self._teardown_grace
        if process.is_alive():
            process.terminate()
            process.join(timeout=grace)
        if process.is_alive():
            process.kill()
            process.join(timeout=grace)

    def _mark_dead(self, index: int) -> set:
        """Discard a dead worker; return the shards whose state died."""
        worker = self._workers[index]
        if worker is None:
            return set()
        lost = set(worker.resident)
        try:
            worker.conn.close()
        except OSError:
            pass
        self._reap(worker.process)
        self._workers[index] = None
        return lost

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        sentinel = pickle.dumps(None, protocol=_PROTO)
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.conn.send_bytes(sentinel)
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=self._teardown_grace)
            self._reap(worker.process)
            self._workers[index] = None

    def terminate(self) -> None:
        """Hard stop: kill every worker now, without the polite sentinel.

        Used by the supervisor's deadline watchdog and by tests; unlike
        :meth:`close` it never waits on a worker that is wedged in a
        task — it goes straight to the terminate→kill escalation.
        """
        self._closed = True
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.conn.close()
            except OSError:
                pass
            self._reap(worker.process)
            self._workers[index] = None

    # -- execution -------------------------------------------------------

    def submit(self, shard_id: int, task: str | Callable, delta: Any) -> Any:
        return self.run_shards(task, {shard_id: delta})[shard_id]

    def run(
        self, task: str | Callable, deltas: Sequence[Any]
    ) -> list[Any]:
        results = self.run_shards(task, dict(enumerate(deltas)))
        return [results[i] for i in range(len(deltas))]

    def run_shards(
        self, task: str | Callable, deltas: Mapping[int, Any]
    ) -> dict[int, Any]:
        if self._closed:
            raise RuntimeError("ResidentPoolExecutor is closed")
        results: dict[int, Any] = {}
        pending = dict(deltas)
        for _ in range(self._MAX_CRASH_RETRIES):
            failed, lost = self._run_once(task, pending, results)
            if lost:
                raise ResidentWorkerLost(sorted(lost))
            if not failed:
                return results
            pending = {shard_id: deltas[shard_id] for shard_id in failed}
        raise RuntimeError(
            f"resident workers kept crashing on task {task!r} "
            f"(shards {sorted(pending)})"
        )

    def _run_once(
        self,
        task: str | Callable,
        pending: Mapping[int, Any],
        results: dict[int, Any],
    ) -> tuple[list[int], set]:
        """One send/recv pass; returns (failed shard ids, lost shards)."""
        stateful = task_is_stateful(task)
        by_worker: dict[int, list[int]] = {}
        for shard_id in sorted(pending):
            by_worker.setdefault(self.worker_of(shard_id), []).append(
                shard_id
            )
        failed: list[int] = []
        lost: set = set()
        errors: list[str] = []
        sent: list[tuple[int, _Worker, list[int]]] = []
        # Send phase: pipeline every request so workers run concurrently.
        for index, shard_ids in sorted(by_worker.items()):
            worker = self._ensure(index)
            alive = True
            for shard_id in shard_ids:
                blob = pickle.dumps(
                    (task, shard_id, pending[shard_id]), protocol=_PROTO
                )
                try:
                    worker.conn.send_bytes(blob)
                except (BrokenPipeError, OSError):
                    alive = False
                    break
                self._bytes_shipped += len(blob)
                if stateful:
                    # Record at send time: if the worker dies before
                    # processing, over-reporting the loss is safe (the
                    # caller re-ships); under-reporting is not.
                    worker.resident.add(shard_id)
            if not alive:
                lost |= self._mark_dead(index)
                failed.extend(shard_ids)
                continue
            sent.append((index, worker, shard_ids))
        # Recv phase: always drain every surviving worker fully so no
        # stale response is left queued for the next batch. When a
        # deadline is set, each worker's batch gets one wall-clock
        # budget; a worker that blows it is indistinguishable from a
        # hung one, so it is reaped like a dead worker (its resident
        # state reported lost) instead of blocking the parent forever.
        for index, worker, shard_ids in sent:
            deadline = self.task_deadline
            budget_end = None if deadline is None else monotonic() + deadline
            received = 0
            for shard_id in shard_ids:
                if budget_end is not None:
                    remaining = budget_end - monotonic()
                    if remaining <= 0 or not worker.conn.poll(remaining):
                        lost |= self._mark_dead(index)
                        failed.extend(shard_ids[received:])
                        break
                try:
                    raw = worker.conn.recv_bytes()
                except (EOFError, OSError):
                    lost |= self._mark_dead(index)
                    failed.extend(shard_ids[received:])
                    break
                status, value = pickle.loads(raw)
                received += 1
                if status == "err":
                    errors.append(
                        f"shard {shard_id}: {value}"
                    )
                    continue
                results[shard_id] = value
        if errors and not lost:
            raise RuntimeError(
                f"resident task {task!r} failed: " + "; ".join(errors)
            )
        return failed, lost


# ---------------------------------------------------------------------------
# registry tasks (run worker-side; see repro.exec.tasks)
# ---------------------------------------------------------------------------


def adopt_shard(state: dict, shard_id: int, shard_state: dict) -> int:
    """Install (or replace) a shard's packed claim rows."""
    state[shard_id] = {
        "objs": list(shard_state["objs"]),
        "src": [list(row) for row in shard_state["src"]],
        "entry": [list(row) for row in shard_state["entry"]],
        "n_sources": shard_state["n_sources"],
    }
    return len(state[shard_id]["objs"])


def apply_delta(
    state: dict, shard_id: int, rows: Sequence[tuple]
) -> int:
    """Replace (or insert) per-object claim rows in a resident shard.

    ``rows`` is ``[(obj, src_codes, entry_codes), ...]``; an empty
    code list removes the object (fewer than two providers left).
    """
    shard = state.get(shard_id)
    if shard is None:
        raise RuntimeError(f"shard {shard_id} has no resident state")
    objs, src, entry = shard["objs"], shard["src"], shard["entry"]
    for obj, src_codes, entry_codes in rows:
        i = bisect_left(objs, obj)
        present = i < len(objs) and objs[i] == obj
        if not src_codes:
            if present:
                del objs[i], src[i], entry[i]
            continue
        if present:
            src[i] = list(src_codes)
            entry[i] = list(entry_codes)
        else:
            objs.insert(i, obj)
            src.insert(i, list(src_codes))
            entry.insert(i, list(entry_codes))
    return len(rows)


def sweep_resident(state: dict, shard_id: int, delta: Any):
    """Sweep a resident shard into a :class:`RecordBlock`.

    Flattens the resident rows into the same object-major layout the
    parent's cold pack produces (``obj_base=0``; record-local object
    indices are never consumed parent-side), so the result is
    bit-for-bit the cold sweep of the same shard.
    """
    import numpy as np

    from repro.dependence.sharding import ShardPayload, sweep_shard

    shard = state.get(shard_id)
    if shard is None:
        raise RuntimeError(f"shard {shard_id} has no resident state")
    lengths = np.asarray(
        [len(row) for row in shard["src"]], dtype=np.int64
    )
    src = np.asarray(
        [code for row in shard["src"] for code in row], dtype=np.int64
    )
    entry = np.asarray(
        [code for row in shard["entry"] for code in row], dtype=np.int64
    )
    payload = ShardPayload(
        shard_id=shard_id,
        obj_base=0,
        src=src,
        entry=entry,
        lengths=lengths,
        n_sources=shard["n_sources"],
    )
    return sweep_shard(payload)
