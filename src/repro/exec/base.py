"""Transport-agnostic shard executor interface.

The dependence layer plans work as numbered shards (see
:class:`repro.dependence.sharding.ShardPlan`) and hands each shard's
work item — a full payload or a dirty-range delta — to a
:class:`ShardExecutor`. The interface is deliberately RPC-shaped:
callers address *shards* by id and *work* by registry name
(:mod:`repro.exec.tasks`), never a transport, so a multi-node
implementation can drop in behind the same three calls:

``submit(shard_id, task, delta)``
    run one task against one shard and return its result;
``run(task, deltas)``
    batch form over a dense shard list (``shard_id`` = list index);
``run_shards(task, deltas)``
    batch form over a sparse ``{shard_id: delta}`` mapping.

Every executor states its contract up front via
:class:`ExecutorCapabilities`: whether workers retain per-shard state
between calls (``resident_state``) and what serialization the
transport applies to payloads (``serialization``). Callers use the
former to decide between shipping full payloads every time and
shipping deltas against resident state; the latter is informational
(byte accounting is only meaningful when it is not ``"none"``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ExecutorFailureWarning
from repro.exec.tasks import resolve_task

__all__ = [
    "ExecutorCapabilities",
    "ShardExecutor",
    "SerialExecutor",
    "discard_broken_pool",
]


def discard_broken_pool(backend: str, close: Callable[[], None]) -> None:
    """Tear down a broken process pool, audibly.

    The shared recovery step for every ``BrokenProcessPool`` site: a
    dead worker poisons the whole pool, so the pool is discarded before
    the error propagates (the next run — or a supervised retry — starts
    clean) and a :class:`~repro.exceptions.ExecutorFailureWarning`
    names the backend that failed instead of recovering silently.
    """
    warnings.warn(
        f"{backend!r} pool worker died (BrokenProcessPool); the pool was "
        "discarded and will be rebuilt on the next run",
        ExecutorFailureWarning,
        stacklevel=3,
    )
    close()


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What a :class:`ShardExecutor` implementation guarantees.

    ``resident_state``
        Workers hold per-shard state across calls, so stateful registry
        tasks (``resident.*``) are accepted and deltas may be shipped
        instead of full payloads.
    ``serialization``
        Format applied to task payloads in transit: ``"none"`` for
        in-process execution, ``"pickle"`` for process transports.
    """

    resident_state: bool
    serialization: str


class ShardExecutor:
    """Abstract executor; see the module docstring for the contract.

    ``close()`` is idempotent for every implementation. Executors are
    context managers: ``__exit__`` closes.
    """

    capabilities = ExecutorCapabilities(
        resident_state=False, serialization="none"
    )

    def submit(self, shard_id: int, task: str | Callable, delta: Any) -> Any:
        """Run ``task`` against shard ``shard_id`` and return its result."""
        raise NotImplementedError

    def run(
        self, task: str | Callable, deltas: Sequence[Any]
    ) -> list[Any]:
        """Run ``task`` over a dense shard list; index = shard id."""
        return [self.submit(i, task, delta) for i, delta in enumerate(deltas)]

    def run_shards(
        self, task: str | Callable, deltas: Mapping[int, Any]
    ) -> dict[int, Any]:
        """Run ``task`` over a sparse ``{shard_id: delta}`` mapping."""
        return {
            shard_id: self.submit(shard_id, task, deltas[shard_id])
            for shard_id in sorted(deltas)
        }

    @property
    def bytes_shipped(self) -> int:
        """Cumulative payload bytes serialized to workers (0 in-process)."""
        return 0

    def close(self) -> None:
        """Release worker resources. Safe to call repeatedly."""

    @property
    def closed(self) -> bool:
        return False

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """In-process executor: tasks run inline, state lives in a dict.

    Serves the ``serial`` and ``numpy`` backends (the backend choice
    only changes the kernels inside the task, not the transport).
    Resident state is supported trivially — it is an ordinary mapping
    in this process — which makes the serial executor the reference
    implementation for the stateful task contract.
    """

    capabilities = ExecutorCapabilities(
        resident_state=True, serialization="none"
    )

    def __init__(self) -> None:
        self._state: dict[int, Any] = {}
        self._closed = False

    def submit(self, shard_id: int, task: str | Callable, delta: Any) -> Any:
        fn, stateful = resolve_task(task)
        if stateful:
            return fn(self._state, shard_id, delta)
        return fn(delta)

    def close(self) -> None:
        self._state.clear()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed
