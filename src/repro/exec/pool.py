"""Stateless process-pool executor.

:class:`PoolExecutor` preserves the pre-executor-layer behaviour of
``ParallelSweepExecutor`` bit-for-bit for the ``process`` backend:

- a batch of one (or zero) payloads runs in-process — the pool spin-up
  would dominate, and results are identical either way;
- ``persistent`` pools are created lazily and survive across ``run``
  calls until :meth:`close`; a broken pool is shut down before the
  error propagates so no dead workers linger;
- ephemeral pools (the default) are sized ``min(num_workers, len)``
  and torn down per call.

Workers are anonymous — there is no shard→worker pinning and no
resident state, so only stateless tasks are accepted.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.exec.base import (
    ExecutorCapabilities,
    ShardExecutor,
    discard_broken_pool,
)
from repro.exec.tasks import resolve_task, task_is_stateful

__all__ = ["PoolExecutor"]


def _invoke(item: tuple[str | Callable, Any]) -> Any:
    """Pool-side trampoline: resolve the task name and apply it."""
    task, delta = item
    fn, _ = resolve_task(task)
    return fn(delta)


class PoolExecutor(ShardExecutor):
    """ProcessPoolExecutor-backed stateless executor."""

    capabilities = ExecutorCapabilities(
        resident_state=False, serialization="pickle"
    )

    def __init__(self, num_workers: int = 1, *, persistent: bool = False):
        self.num_workers = int(num_workers)
        self.persistent = bool(persistent)
        self._pool: ProcessPoolExecutor | None = None
        # The pool a run() is currently blocked on (persistent or
        # ephemeral) — what terminate() must reach from another thread
        # when a deadline watchdog decides the batch is wedged.
        self._active: ProcessPoolExecutor | None = None

    def submit(self, shard_id: int, task: str | Callable, delta: Any) -> Any:
        return self.run(task, [delta])[0]

    def run(
        self, task: str | Callable, deltas: Sequence[Any]
    ) -> list[Any]:
        if task_is_stateful(task):
            raise RuntimeError(
                f"task {task!r} needs resident state; PoolExecutor "
                "workers are anonymous (use ResidentPoolExecutor)"
            )
        deltas = list(deltas)
        if len(deltas) <= 1:
            fn, _ = resolve_task(task)
            return [fn(delta) for delta in deltas]
        items = [(task, delta) for delta in deltas]
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers
                )
            self._active = self._pool
            try:
                return list(self._pool.map(_invoke, items))
            except BrokenProcessPool:
                discard_broken_pool("process", self.close)
                raise
            finally:
                self._active = None
        workers = min(self.num_workers, len(items))
        pool = ProcessPoolExecutor(max_workers=workers)
        self._active = pool
        try:
            return list(pool.map(_invoke, items))
        finally:
            self._active = None
            pool.shutdown()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def terminate(self) -> None:
        """Hard stop: kill the live pool's workers without waiting.

        ``shutdown()`` joins workers, so a hung worker would hang the
        teardown too; the deadline watchdog needs a stop that cannot
        block. Killing the processes breaks the pool, which unblocks
        any ``run()`` currently waiting on it (it raises
        ``BrokenProcessPool`` — a retryable failure to the supervisor).
        """
        pool = self._active or self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    @property
    def closed(self) -> bool:
        return self._pool is None
