"""Stateless process-pool executor.

:class:`PoolExecutor` preserves the pre-executor-layer behaviour of
``ParallelSweepExecutor`` bit-for-bit for the ``process`` backend:

- a batch of one (or zero) payloads runs in-process — the pool spin-up
  would dominate, and results are identical either way;
- ``persistent`` pools are created lazily and survive across ``run``
  calls until :meth:`close`; a broken pool is shut down before the
  error propagates so no dead workers linger;
- ephemeral pools (the default) are sized ``min(num_workers, len)``
  and torn down per call.

Workers are anonymous — there is no shard→worker pinning and no
resident state, so only stateless tasks are accepted.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.exec.base import ExecutorCapabilities, ShardExecutor
from repro.exec.tasks import resolve_task, task_is_stateful

__all__ = ["PoolExecutor"]


def _invoke(item: tuple[str | Callable, Any]) -> Any:
    """Pool-side trampoline: resolve the task name and apply it."""
    task, delta = item
    fn, _ = resolve_task(task)
    return fn(delta)


class PoolExecutor(ShardExecutor):
    """ProcessPoolExecutor-backed stateless executor."""

    capabilities = ExecutorCapabilities(
        resident_state=False, serialization="pickle"
    )

    def __init__(self, num_workers: int = 1, *, persistent: bool = False):
        self.num_workers = int(num_workers)
        self.persistent = bool(persistent)
        self._pool: ProcessPoolExecutor | None = None

    def submit(self, shard_id: int, task: str | Callable, delta: Any) -> Any:
        return self.run(task, [delta])[0]

    def run(
        self, task: str | Callable, deltas: Sequence[Any]
    ) -> list[Any]:
        if task_is_stateful(task):
            raise RuntimeError(
                f"task {task!r} needs resident state; PoolExecutor "
                "workers are anonymous (use ResidentPoolExecutor)"
            )
        deltas = list(deltas)
        if len(deltas) <= 1:
            fn, _ = resolve_task(task)
            return [fn(delta) for delta in deltas]
        items = [(task, delta) for delta in deltas]
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers
                )
            try:
                return list(self._pool.map(_invoke, items))
            except BrokenProcessPool:
                # A dead worker poisons the whole pool; drop it so the
                # next run (if the caller retries) starts clean.
                self.close()
                raise
        workers = min(self.num_workers, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_invoke, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    @property
    def closed(self) -> bool:
        return self._pool is None
