"""Named task registry for the execution layer.

Executors ship *task names*, not callables, across their transport —
the registry is the RPC surface. Each entry maps a stable string name
to ``(module, attribute, stateful)``. Workers resolve the name by
import at call time, so the registry works identically in-process and
across process (or, later, network) boundaries.

Stateless tasks are pure functions of their payload::

    fn(payload) -> result

Stateful tasks additionally receive the worker's resident-state
mapping (one entry per shard held by that worker) and the shard id::

    fn(state, shard_id, delta) -> result

Only executors whose :class:`~repro.exec.base.ExecutorCapabilities`
advertise ``resident_state`` accept stateful tasks. For back
compatibility executors also accept a plain module-level callable in
place of a name; callables are always treated as stateless.
"""

from __future__ import annotations

import importlib
from typing import Callable

# name -> (module path, attribute, stateful)
TASKS: dict[str, tuple[str, str, bool]] = {
    "evidence.sweep_shard": (
        "repro.dependence.sharding",
        "sweep_shard",
        False,
    ),
    "collector.shard_sweep": (
        "repro.dependence.sharding",
        "_collector_shard_sweep",
        False,
    ),
    "resident.adopt": ("repro.exec.resident", "adopt_shard", True),
    "resident.delta": ("repro.exec.resident", "apply_delta", True),
    "resident.sweep": ("repro.exec.resident", "sweep_resident", True),
}


def resolve_task(task: str | Callable) -> tuple[Callable, bool]:
    """Resolve a task name (or bare callable) to ``(fn, stateful)``.

    Resolution is the one boundary every transport crosses — serial
    in-process, pool workers, resident workers all resolve here at call
    time — so it is also where the fault-injection harness
    (:mod:`repro.exec.faults`, ``REPRO_FAULTS``) hooks in: when a fault
    plan is active, the resolved callable is wrapped so the schedule
    fires exactly at the task-call boundary.
    """
    if callable(task):
        return task, False
    try:
        module_name, attribute, stateful = TASKS[task]
    except KeyError:
        raise KeyError(
            f"unknown executor task {task!r}; registered: {sorted(TASKS)}"
        ) from None
    module = importlib.import_module(module_name)
    fn = getattr(module, attribute)
    from repro.exec.faults import active_plan

    plan = active_plan()
    if plan:
        fn = plan.wrap(task, fn)
    return fn, stateful


def task_is_stateful(task: str | Callable) -> bool:
    """Whether ``task`` mutates or reads worker-resident shard state."""
    if callable(task):
        return False
    try:
        return TASKS[task][2]
    except KeyError:
        raise KeyError(
            f"unknown executor task {task!r}; registered: {sorted(TASKS)}"
        ) from None
