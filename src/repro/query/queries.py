"""The four query shapes of Example 4.1.

    1. What are the books on Java Programming?        (keyword search)
    2. Who are authors of the book Effective Java?    (lookup)
    3. Which books are authored by Jeffrey Ullman?    (inverse lookup)
    4. Who is the most productive publisher in the
       Database field?                                (aggregate)

Queries evaluate against *resolved records* — ``{book: {field: value}}``
— produced either offline (full fusion) or incrementally by the online
engine, so the same query object measures answer quality at any stage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.types import ObjectId
from repro.exceptions import QueryError
from repro.linkage.authors import name_similarity

#: A resolved record: field name -> fused value.
Record = Mapping[str, object]
Records = Mapping[ObjectId, Record]


class Query(ABC):
    """A query over resolved records; answers are comparable across stages."""

    @abstractmethod
    def evaluate(self, records: Records) -> object:
        """Evaluate against resolved records."""

    @staticmethod
    def answer_f1(answer: object, reference: object) -> float:
        """Quality of ``answer`` against ``reference`` in [0, 1].

        Set-valued answers score F1 of the sets; scalar answers score
        exact match. This is the per-step quality measure of the online
        engine.
        """
        if isinstance(reference, (set, frozenset)):
            if not isinstance(answer, (set, frozenset)):
                raise QueryError("answer/reference shapes differ")
            if not reference and not answer:
                return 1.0
            if not reference or not answer:
                return 0.0
            hits = len(answer & reference)
            precision = hits / len(answer)
            recall = hits / len(reference)
            if precision + recall == 0:
                return 0.0
            return 2 * precision * recall / (precision + recall)
        return 1.0 if answer == reference else 0.0


@dataclass(frozen=True, slots=True)
class KeywordQuery(Query):
    """Books whose title contains a keyword (Query 1)."""

    keyword: str

    def evaluate(self, records: Records) -> frozenset[ObjectId]:
        needle = self.keyword.lower()
        return frozenset(
            book
            for book, record in records.items()
            if needle in str(record.get("title", "")).lower()
        )


@dataclass(frozen=True, slots=True)
class LookupQuery(Query):
    """The fused value of one field of one book (Query 2)."""

    book: ObjectId
    field: str = "authors"

    def evaluate(self, records: Records) -> object:
        record = records.get(self.book)
        if record is None:
            return None
        return record.get(self.field)


@dataclass(frozen=True, slots=True)
class BooksByAuthorQuery(Query):
    """Books whose fused author list contains a matching name (Query 3).

    Name matching is fuzzy (``name_similarity``) because author
    representations vary across stores even after fusion.
    """

    author: str
    min_similarity: float = 0.85

    def evaluate(self, records: Records) -> frozenset[ObjectId]:
        matches = set()
        for book, record in records.items():
            authors = record.get("authors") or ()
            if not isinstance(authors, tuple):
                raise QueryError(
                    f"authors of {book!r} must be a tuple, got {authors!r}"
                )
            for name in authors:
                if name_similarity(name, self.author) >= self.min_similarity:
                    matches.add(book)
                    break
        return frozenset(matches)


@dataclass(frozen=True, slots=True)
class TopPublisherQuery(Query):
    """The most productive publisher within a category (Query 4).

    Productivity = number of category books whose fused publisher it is.
    Ties break lexicographically for determinism. Returns ``None`` when
    the category is empty.
    """

    category: str

    def evaluate(self, records: Records) -> object:
        counts: dict[object, int] = {}
        for record in records.values():
            if record.get("category") != self.category:
                continue
            publisher = record.get("publisher")
            if publisher is None:
                continue
            counts[publisher] = counts.get(publisher, 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda p: (counts[p], repr(p)))
