"""Online query answering over multi-source catalogs."""

from repro.query.catalog import LISTING_FIELDS, BookCatalog, Listing
from repro.query.engine import (
    OnlineQueryEngine,
    OnlineRun,
    ProbeStep,
    ServedQueryEngine,
)
from repro.query.ordering import (
    accuracy_order,
    coverage_order,
    marginal_gain_order,
    random_order,
)
from repro.query.queries import (
    BooksByAuthorQuery,
    KeywordQuery,
    LookupQuery,
    Query,
    TopPublisherQuery,
)

__all__ = [
    "BookCatalog",
    "BooksByAuthorQuery",
    "KeywordQuery",
    "LISTING_FIELDS",
    "Listing",
    "LookupQuery",
    "OnlineQueryEngine",
    "OnlineRun",
    "ProbeStep",
    "Query",
    "ServedQueryEngine",
    "TopPublisherQuery",
    "accuracy_order",
    "coverage_order",
    "marginal_gain_order",
    "random_order",
]
