"""Multi-source book catalog — the substrate of Example 4.1.

The paper's case study integrates listings from 876 bookstores via
AbeBooks: "each listing contains information including book title,
author list, publisher, year, etc., on one book provided by one
bookstore". :class:`BookCatalog` stores such listings and projects any
listing field into a :class:`~repro.core.dataset.ClaimDataset` (object =
book, source = store) so the truth-discovery and dependence machinery
applies unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, SourceId
from repro.exceptions import DataError

#: Listing fields that can be projected into claim datasets.
LISTING_FIELDS = ("title", "authors", "publisher", "year", "category")


@dataclass(frozen=True, slots=True)
class Listing:
    """One bookstore's record for one book."""

    store: SourceId
    book: ObjectId
    title: str
    authors: tuple[str, ...]
    publisher: str
    year: int
    category: str

    def field(self, name: str):
        """Field accessor with validation."""
        if name not in LISTING_FIELDS:
            raise DataError(f"unknown listing field {name!r}")
        return getattr(self, name)


class BookCatalog:
    """An indexed collection of listings (one per store × book)."""

    def __init__(self, listings: Iterable[Listing] = ()) -> None:
        self._by_key: dict[tuple[SourceId, ObjectId], Listing] = {}
        self._by_store: dict[SourceId, dict[ObjectId, Listing]] = {}
        self._by_book: dict[ObjectId, dict[SourceId, Listing]] = {}
        for listing in listings:
            self.add(listing)

    def add(self, listing: Listing) -> None:
        """Insert one listing; a store lists each book at most once."""
        key = (listing.store, listing.book)
        if key in self._by_key:
            if self._by_key[key] == listing:
                return
            raise DataError(
                f"store {listing.store!r} already lists book {listing.book!r}"
            )
        self._by_key[key] = listing
        self._by_store.setdefault(listing.store, {})[listing.book] = listing
        self._by_book.setdefault(listing.book, {})[listing.store] = listing

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def stores(self) -> list[SourceId]:
        """All store ids, sorted."""
        return sorted(self._by_store)

    @property
    def books(self) -> list[ObjectId]:
        """All book ids, sorted."""
        return sorted(self._by_book)

    def listings_by(self, store: SourceId) -> list[Listing]:
        """All listings of one store, ordered by book id."""
        return [
            listing
            for _, listing in sorted(self._by_store.get(store, {}).items())
        ]

    def listings_for(self, book: ObjectId) -> list[Listing]:
        """All listings of one book, ordered by store id."""
        return [
            listing
            for _, listing in sorted(self._by_book.get(book, {}).items())
        ]

    def coverage(self, store: SourceId) -> int:
        """Number of books the store lists."""
        return len(self._by_store.get(store, {}))

    def field_claims(self, field: str) -> ClaimDataset:
        """Project one field into a claim dataset (object = book)."""
        if field not in LISTING_FIELDS:
            raise DataError(f"unknown listing field {field!r}")
        dataset = ClaimDataset()
        for (store, book), listing in sorted(self._by_key.items()):
            dataset.add(
                Claim(source=store, object=book, value=listing.field(field))
            )
        return dataset

    def claim_dataset(
        self, fields: Iterable[str] = LISTING_FIELDS
    ) -> ClaimDataset:
        """Project every listing field into one claim dataset.

        Objects are ``(book, field)`` pairs, so one truth round (and one
        published snapshot) covers the whole catalog — the serving
        layer's query path (:class:`~repro.query.engine.ServedQueryEngine`)
        reassembles fused per-book records from exactly this shape.
        """
        fields = tuple(fields)
        for field in fields:
            if field not in LISTING_FIELDS:
                raise DataError(f"unknown listing field {field!r}")
        dataset = ClaimDataset()
        for (store, book), listing in sorted(self._by_key.items()):
            for field in fields:
                dataset.add(
                    Claim(
                        source=store,
                        object=(book, field),
                        value=listing.field(field),
                    )
                )
        return dataset

    def remove_store(self, store: SourceId) -> None:
        """Drop all listings of one store (no-op for unknown stores)."""
        old = self._by_store.pop(store, {})
        for book in old:
            del self._by_key[(store, book)]
            del self._by_book[book][store]
            if not self._by_book[book]:
                del self._by_book[book]

    def restrict_stores(self, stores: Iterable[SourceId]) -> "BookCatalog":
        """Sub-catalog containing only the given stores' listings."""
        keep = set(stores)
        return BookCatalog(
            listing
            for (store, _), listing in sorted(self._by_key.items())
            if store in keep
        )

    def shared_books(self, s1: SourceId, s2: SourceId) -> set[ObjectId]:
        """Books listed by both stores (Example 4.1's overlap criterion)."""
        books1 = self._by_store.get(s1, {})
        books2 = self._by_store.get(s2, {})
        if len(books1) > len(books2):
            books1, books2 = books2, books1
        return {book for book in books1 if book in books2}

    def statistics(self) -> dict[str, float]:
        """Corpus statistics in the shape the paper reports.

        Keys: ``stores``, ``books``, ``listings``, ``min/max books per
        store``, ``min/max/mean author-list variants per book``.
        """
        variants = [
            len({listing.authors for listing in by_store.values()})
            for by_store in self._by_book.values()
        ]
        per_store = [len(books) for books in self._by_store.values()]
        if not variants or not per_store:
            raise DataError("catalog is empty")
        return {
            "stores": float(len(self._by_store)),
            "books": float(len(self._by_book)),
            "listings": float(len(self._by_key)),
            "min_books_per_store": float(min(per_store)),
            "max_books_per_store": float(max(per_store)),
            "min_author_variants": float(min(variants)),
            "max_author_variants": float(max(variants)),
            "mean_author_variants": sum(variants) / len(variants),
        }
