"""Online (anytime) query answering over a multi-source catalog.

Example 4.1, requirement 2: "we might adopt an online query answering
approach, where we first return partially computed answers and then
update probabilities of the answers as we query more data sources."

:class:`OnlineQueryEngine` probes stores one at a time following a given
order, maintains incrementally-fused records (accuracy-weighted,
dependence-discounted votes per book × field), evaluates the query after
every probe, and reports the anytime quality curve — how fast each
ordering policy converges to the final (or ground-truth) answer.

:class:`ServedQueryEngine` is the production read path: instead of
re-deriving answers from raw claim dicts on every call, it evaluates
queries against one published :class:`~repro.serve.snapshot.Snapshot`
(objects = ``(book, field)`` pairs, see
:meth:`~repro.query.catalog.BookCatalog.claim_dataset`), materialising
the fused records once per snapshot — so every answer is consistent
with exactly one truth round, and repeated queries pay a dict lookup,
not a fusion pass.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.graph import DependenceGraph
from repro.exceptions import QueryError
from repro.query.catalog import LISTING_FIELDS, BookCatalog
from repro.query.queries import Query


@dataclass(frozen=True, slots=True)
class ProbeStep:
    """State after probing one more store."""

    step: int
    store: SourceId
    answer: object
    quality: float
    books_covered: int


@dataclass
class OnlineRun:
    """The full anytime trajectory of one query under one ordering."""

    steps: list[ProbeStep]
    final_answer: object
    reference: object

    def quality_series(self) -> list[float]:
        """Answer quality after each probe."""
        return [step.quality for step in self.steps]

    def probes_to_quality(self, target: float) -> int | None:
        """First probe count reaching ``target`` quality, or ``None``."""
        if not 0.0 <= target <= 1.0:
            raise QueryError(f"target must be in [0, 1], got {target}")
        for step in self.steps:
            if step.quality >= target:
                return step.step
        return None


class _IncrementalFusion:
    """Per-(book, field) discounted vote counts, updated store by store."""

    def __init__(
        self,
        accuracies: Mapping[SourceId, float],
        dependence: DependenceGraph | None,
        copy_rate: float,
    ) -> None:
        self._accuracies = accuracies
        self._dependence = dependence
        self._copy_rate = copy_rate
        # (book, field) -> value -> [weight, providers]
        self._votes: dict[
            tuple[ObjectId, str], dict[Value, tuple[float, list[SourceId]]]
        ] = {}

    def add_store(self, store: SourceId, catalog: BookCatalog) -> None:
        accuracy = self._accuracies.get(store, 0.5)
        for listing in catalog.listings_by(store):
            for field in LISTING_FIELDS:
                value = listing.field(field)
                slot = self._votes.setdefault((listing.book, field), {})
                weight, providers = slot.get(value, (0.0, []))
                vote = accuracy
                if self._dependence is not None:
                    vote *= self._dependence.independence_weight(
                        store, providers, self._copy_rate
                    )
                slot[value] = (weight + vote, providers + [store])

    def records(self) -> dict[ObjectId, dict[str, Value]]:
        """Current fused records: winning value per (book, field)."""
        fused: dict[ObjectId, dict[str, Value]] = {}
        for (book, field), votes in self._votes.items():
            winner = max(votes, key=lambda v: (votes[v][0], repr(v)))
            fused.setdefault(book, {})[field] = winner
        return fused


class OnlineQueryEngine:
    """Anytime query answering with pluggable source ordering.

    ``accuracies`` and ``dependence`` are the offline knowledge the paper
    says the online strategy should apply ("computing the probabilities
    of answers require applying knowledge of dependence between sources
    and also accuracy of sources"); both default to nothing (pure
    voting).
    """

    def __init__(
        self,
        catalog: BookCatalog,
        accuracies: Mapping[SourceId, float] | None = None,
        dependence: DependenceGraph | None = None,
        copy_rate: float = 0.8,
    ) -> None:
        if len(catalog) == 0:
            raise QueryError("catalog is empty")
        self.catalog = catalog
        self.accuracies = accuracies or {}
        self.dependence = dependence
        self.copy_rate = copy_rate
        self._final_records: dict[ObjectId, dict[str, Value]] | None = None

    def final_records(self) -> dict[ObjectId, dict[str, Value]]:
        """Fused records after probing every store (the offline answer).

        Memoised: the catalog, accuracies and dependence knowledge are
        fixed at construction, so the full fusion pass runs once — every
        subsequent :meth:`run` with a default reference reuses it
        instead of re-deriving the answer from raw claims per call.
        """
        if self._final_records is None:
            fusion = _IncrementalFusion(
                self.accuracies, self.dependence, self.copy_rate
            )
            for store in self.catalog.stores:
                fusion.add_store(store, self.catalog)
            self._final_records = fusion.records()
        return self._final_records

    def run(
        self,
        query: Query,
        order: Sequence[SourceId],
        reference: object = None,
        max_probes: int | None = None,
    ) -> OnlineRun:
        """Probe stores in ``order``, evaluating ``query`` after each.

        ``reference`` is the answer to score against; by default the
        final answer over all stores (self-convergence). Pass a
        ground-truth answer to measure absolute quality instead.
        """
        if not order:
            raise QueryError("source order is empty")
        unknown = [s for s in order if s not in set(self.catalog.stores)]
        if unknown:
            raise QueryError(f"order contains unknown stores: {unknown[:3]}")
        if reference is None:
            reference = query.evaluate(self.final_records())

        fusion = _IncrementalFusion(
            self.accuracies, self.dependence, self.copy_rate
        )
        steps: list[ProbeStep] = []
        budget = len(order) if max_probes is None else min(max_probes, len(order))
        covered: set[ObjectId] = set()
        answer: object = None
        for index, store in enumerate(order[:budget], start=1):
            fusion.add_store(store, self.catalog)
            covered.update(
                listing.book for listing in self.catalog.listings_by(store)
            )
            answer = query.evaluate(fusion.records())
            steps.append(
                ProbeStep(
                    step=index,
                    store=store,
                    answer=answer,
                    quality=Query.answer_f1(answer, reference),
                    books_covered=len(covered),
                )
            )
        return OnlineRun(steps=steps, final_answer=answer, reference=reference)


class ServedQueryEngine:
    """Query evaluation against one published serving snapshot.

    The snapshot must cover a catalog-shaped dataset — objects are
    ``(book, field)`` pairs, the shape
    :meth:`~repro.query.catalog.BookCatalog.claim_dataset` produces and
    one truth round fuses. The per-book records are assembled once at
    construction (one pass over the snapshot's decisions); every
    :meth:`answer` after that evaluates against the cached records, so
    answers are bit-for-bit consistent with the snapshot's truth round
    for as long as the engine lives — a publish elsewhere never bleeds
    into an engine already serving version N.
    """

    def __init__(self, snapshot) -> None:
        records: dict[ObjectId, dict[str, Value]] = {}
        for obj, value in snapshot.decisions().items():
            if not (isinstance(obj, tuple) and len(obj) == 2):
                raise QueryError(
                    "ServedQueryEngine needs a catalog-shaped snapshot "
                    "(objects are (book, field) pairs, see "
                    f"BookCatalog.claim_dataset); got object {obj!r}"
                )
            book, field = obj
            records.setdefault(book, {})[field] = value
        self.snapshot = snapshot
        self._records = records

    @property
    def version(self) -> int | None:
        """The serving version every answer is consistent with."""
        return self.snapshot.version

    def records(self) -> dict[ObjectId, dict[str, Value]]:
        """The fused per-book records of the snapshot's truth round."""
        return {book: dict(fields) for book, fields in self._records.items()}

    def answer(self, query: Query) -> object:
        """Evaluate one query against the snapshot's fused records."""
        return query.evaluate(self._records)

    def confidence(self, book: ObjectId, field: str) -> float:
        """The truth probability behind one served record field."""
        return self.snapshot.probability(
            (book, field), self._records.get(book, {}).get(field)
        )
