"""Source-ordering policies for online query answering.

Section 4, "Query answering": "we want to visit the most promising
sources and avoid going to sources dependent on, or having been copied
by, the ones already visited … we want to query the sources in an order
such that we can return quality answers from the beginning."

Four policies, from strawman to the paper's proposal:

* :func:`random_order` — the no-information baseline;
* :func:`coverage_order` — biggest stores first;
* :func:`accuracy_order` — most accurate stores first;
* :func:`marginal_gain_order` — greedy on expected *new correct values*:
  accuracy × uncovered-books × independence from the stores already
  picked. This is the dependence-aware policy the paper argues for.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.core.types import ObjectId, SourceId
from repro.dependence.graph import DependenceGraph
from repro.exceptions import QueryError
from repro.query.catalog import BookCatalog


def random_order(stores: Sequence[SourceId], seed: int = 0) -> list[SourceId]:
    """A seed-deterministic random permutation of the stores."""
    ordered = sorted(stores)
    random.Random(seed).shuffle(ordered)
    return ordered


def coverage_order(catalog: BookCatalog) -> list[SourceId]:
    """Stores by decreasing number of listed books."""
    return sorted(catalog.stores, key=lambda s: (-catalog.coverage(s), s))


def accuracy_order(
    stores: Sequence[SourceId], accuracies: Mapping[SourceId, float]
) -> list[SourceId]:
    """Stores by decreasing (estimated) accuracy."""
    return sorted(stores, key=lambda s: (-accuracies.get(s, 0.0), s))


def marginal_gain_order(
    catalog: BookCatalog,
    accuracies: Mapping[SourceId, float],
    dependence: DependenceGraph | None = None,
    copy_rate: float = 0.8,
    max_sources: int | None = None,
) -> list[SourceId]:
    """Greedy dependence-aware ordering.

    At each step, pick the store maximising::

        gain(s) = accuracy(s) · (new_books(s) + ε·covered_books(s))
                  · Π_{s0 picked} (1 - copy_rate·P(dep(s, s0)))

    ``new_books`` counts books no picked store covers yet (fresh
    answers); already-covered books still help confirm values, at a
    small ε weight. The independence product is exactly the vote
    discount: a store whose content is probably copied from stores
    already probed adds little.
    """
    if max_sources is not None and max_sources < 1:
        raise QueryError(f"max_sources must be >= 1, got {max_sources}")
    epsilon = 0.1
    remaining = set(catalog.stores)
    covered: set[ObjectId] = set()
    picked: list[SourceId] = []
    budget = len(remaining) if max_sources is None else min(
        max_sources, len(remaining)
    )

    while remaining and len(picked) < budget:
        best_store = None
        best_gain = -1.0
        for store in sorted(remaining):
            listings = catalog.listings_by(store)
            new = sum(1 for listing in listings if listing.book not in covered)
            old = len(listings) - new
            gain = accuracies.get(store, 0.5) * (new + epsilon * old)
            if dependence is not None:
                gain *= dependence.independence_weight(
                    store, picked, copy_rate
                )
            if gain > best_gain:
                best_gain = gain
                best_store = store
        picked.append(best_store)
        remaining.discard(best_store)
        covered.update(
            listing.book for listing in catalog.listings_by(best_store)
        )
    return picked
