"""``repro.Session`` — the one-true-entry-point facade.

Before this module, a caller wiring the full pipeline stitched together
``ClaimDataset``, ``EvidenceCache``, ``Depen``,
``StreamingDependenceEngine``, ``repro.query`` and ``repro.recommend``
by hand, and each layer spelled its execution knobs separately. The
session wraps the whole lifecycle behind one object::

    with repro.Session(truth_backend="auto") as session:
        session.ingest(claims)          # incremental, any number of times
        session.discover()              # dependence posteriors
        session.run_truth()             # copy-aware truth round
        session.publish()               # freeze + version the round
        session.query(obj)              # served from the snapshot
        session.recommend(k=3)          # dependence-penalised top-k

Execution policy is normalised here: ``truth_backend``,
``posterior_backend``, ``parallel_backend``, ``entry_store``,
``num_workers``, ``shard_size`` and ``pool`` are accepted once, as
session keywords, and folded into one
:class:`~repro.core.params.DependenceParams` — no more repeating the
spelling at every layer. An explicit session keyword wins over the same
field of a passed ``params``.

Reads (``query`` / ``recommend`` / ``explain_dependence``) are answered
from the session's :class:`~repro.serve.store.SnapshotStore`, so every
answer is consistent with exactly one published truth round;
:meth:`serving` lifts the same store into the asyncio front-end for
concurrent traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, replace

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset, MutationBatch, MutationDelta
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.streaming import StreamingDependenceEngine
from repro.exceptions import ParameterError, ServeError
from repro.serve.engine import ServingEngine
from repro.serve.snapshot import ServedAnswer, Snapshot
from repro.serve.store import SnapshotStore

#: The execution-policy spellings the session normalises, in the order
#: they are documented on :class:`~repro.core.params.DependenceParams`.
POLICY_FIELDS = (
    "truth_backend",
    "posterior_backend",
    "parallel_backend",
    "entry_store",
    "num_workers",
    "shard_size",
    "pool",
    "max_retries",
    "task_deadline",
    "degrade_on_failure",
)


@dataclass(frozen=True)
class QuarantinedBatch:
    """One fed mutation batch that failed to apply, and why.

    Held in the session's bounded dead-letter queue: the dataset
    rolled the batch back atomically, the serving loop kept going, and
    the producer's poison pill is preserved here for inspection or
    replay instead of stalling everyone else's ingest.
    """

    batch: MutationBatch
    error: str


class Session:
    """Dataset + params + engine lifecycle behind one stable surface.

    Parameters
    ----------
    params / iteration:
        The dependence model and convergence controls; both default.
    min_overlap / default_accuracy:
        Passed to the underlying streaming engine.
    retention:
        Snapshot versions the session's store keeps reachable.
    dead_letter_limit:
        Bound on the quarantine queue for fed batches that fail to
        apply (oldest evicted first; the eviction count survives in
        :meth:`stats`).
    dataset / claims:
        Adopt an existing store, or seed from an iterable of claims.
    **policy:
        Any of :data:`POLICY_FIELDS`, folded into ``params`` (explicit
        keyword beats the passed params' field). Unknown keywords raise
        :class:`~repro.exceptions.ParameterError` eagerly.
    """

    def __init__(
        self,
        *,
        params: DependenceParams | None = None,
        iteration: IterationParams | None = None,
        min_overlap: int = 1,
        default_accuracy: float = 0.8,
        retention: int = 8,
        dead_letter_limit: int = 16,
        dataset: ClaimDataset | None = None,
        claims: Iterable[Claim] | None = None,
        **policy,
    ) -> None:
        unknown = sorted(set(policy) - set(POLICY_FIELDS))
        if unknown:
            raise ParameterError(
                f"unknown Session keyword(s) {unknown}; execution policy "
                f"accepts {list(POLICY_FIELDS)}"
            )
        base = params or DependenceParams()
        overrides = {k: v for k, v in policy.items() if v is not None}
        self.params = replace(base, **overrides) if overrides else base
        self.iteration = iteration or IterationParams()
        if dataset is not None and claims is not None:
            raise ParameterError("pass either dataset or claims, not both")
        if dataset is None:
            dataset = ClaimDataset(claims or ())
        self._engine = StreamingDependenceEngine(
            dataset,
            params=self.params,
            min_overlap=min_overlap,
            default_accuracy=default_accuracy,
        )
        self.min_overlap = min_overlap
        self.store = SnapshotStore(retention=retention)
        # Mutation batches queued by feed() (possibly from other threads
        # / the event loop) and drained in arrival order by the next
        # publish()/refresh().
        self._pending: list[MutationBatch] = []
        self._feed_lock = threading.Lock()
        self._published_dataset_version: int | None = None
        if dead_letter_limit < 1:
            raise ParameterError(
                f"dead_letter_limit must be >= 1, got {dead_letter_limit}"
            )
        # Poison batches drained from the feed: apply() rolled them
        # back atomically, publish() carried on with the rest. Bounded
        # so a misbehaving producer cannot grow memory without limit.
        self._dead_letters: deque[QuarantinedBatch] = deque(
            maxlen=dead_letter_limit
        )
        self._quarantined_total = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> ClaimDataset:
        """The live claim store."""
        return self._engine.dataset

    @property
    def engine(self) -> StreamingDependenceEngine:
        """The underlying streaming dependence engine."""
        return self._engine

    @property
    def graph(self):
        """The most recently discovered dependence graph."""
        return self._engine.graph

    @property
    def accuracies(self) -> dict:
        """Current per-source accuracy estimates."""
        return self._engine.accuracies

    @property
    def dirty(self) -> bool:
        """True when the published state lags the dataset (or feed queue)."""
        if self._pending:
            return True
        return self._published_dataset_version != self.dataset.version

    # ------------------------------------------------------------------
    # write lifecycle: ingest -> discover -> run_truth -> publish
    # ------------------------------------------------------------------

    def ingest(self, claims: Iterable[Claim]) -> MutationDelta:
        """Absorb a claim batch now (structural repair, dirty objects only)."""
        return self._engine.ingest(claims)

    def apply(self, batch: MutationBatch | Iterable[Claim]) -> MutationDelta:
        """Apply one mixed add/retract/correct batch now.

        The unified ingest surface: one
        :class:`~repro.core.dataset.MutationBatch` lands as a single
        versioned transaction and the evidence structure is repaired
        incrementally (inverse deltas for retractions/corrections).
        A bare claim iterable is accepted as an add-only batch —
        :meth:`ingest` is exactly that wrapper.
        """
        return self._engine.ingest(batch)

    def feed(self, claims: MutationBatch | Iterable[Claim]) -> int:
        """Queue a mutation batch for the *next* publish; safe from any thread.

        The serving loop's ingest side: producers feed claims — or a
        full :class:`~repro.core.dataset.MutationBatch` with
        retractions and corrections — without touching engine state; the
        next :meth:`publish` (typically the background refresh) drains
        the queue in arrival order. Returns the queued mutation count.
        """
        if not isinstance(claims, MutationBatch):
            claims = MutationBatch.from_claims(claims)
        with self._feed_lock:
            self._pending.append(claims)
        return len(claims)

    def _drain_feed(self) -> list[MutationBatch]:
        with self._feed_lock:
            batches, self._pending = self._pending, []
        return batches

    def discover(self, **kwargs):
        """Dependence posteriors for every candidate pair (restricted rescore)."""
        return self._engine.discover(**kwargs)

    def run_truth(self, algorithm=None):
        """One copy-aware truth run over the current state."""
        if algorithm is None:
            # Imported lazily, mirroring the streaming engine (the truth
            # package imports the dependence package underneath us).
            from repro.truth.depen import Depen

            algorithm = Depen(
                self.params, self.iteration, min_overlap=self.min_overlap
            )
        return self._engine.run_truth(algorithm)

    def publish(self) -> Snapshot:
        """Drain the feed, refresh truth if needed, publish the round.

        The snapshot lands in the session's store and is returned
        stamped. Publishing an unchanged state is allowed (it re-serves
        the same truth under a new version); :meth:`refresh` is the
        change-detecting variant the background loop uses.

        A fed batch that fails to apply — a retraction of an absent
        claim, a conflicting re-assertion, malformed entries — is
        quarantined to the dead-letter queue and the drain continues:
        :meth:`ClaimDataset.apply <repro.core.dataset.ClaimDataset.apply>`
        is transactional, so the failed batch leaves no trace and the
        batches behind it in the queue still land. Direct :meth:`apply`
        calls keep raising — quarantine is for the fire-and-forget feed
        path, where the producer is long gone by the time the batch is
        drained.
        """
        for batch in self._drain_feed():
            # Applied separately, in arrival order: a retraction queued
            # after the add it withdraws must see the add already
            # applied, exactly as if each producer had called apply().
            try:
                self._engine.ingest(batch)
            except Exception as exc:
                self._dead_letters.append(
                    QuarantinedBatch(
                        batch=batch, error=f"{type(exc).__name__}: {exc}"
                    )
                )
                self._quarantined_total += 1
        snapshot = self._engine.publish(self.store)
        self._published_dataset_version = snapshot.dataset_version
        return snapshot

    def refresh(self) -> Snapshot | None:
        """Publish only if something changed since the last publish."""
        if not self.dirty:
            return None
        return self.publish()

    # ------------------------------------------------------------------
    # read lifecycle: query / recommend / explain (snapshot-backed)
    # ------------------------------------------------------------------

    def _snapshot(self, version: int | None) -> Snapshot:
        try:
            return self.store.get(version)
        except ServeError:
            if version is None:
                raise ServeError(
                    "session has published no snapshot yet; call "
                    "publish() after ingest (or serve() with a running "
                    "refresh loop)"
                ) from None
            raise

    def query(self, obj, *, version: int | None = None) -> ServedAnswer:
        """The served truth for one object (latest or pinned version)."""
        return self._snapshot(version).answer(obj)

    def query_value(self, obj, value, *, version: int | None = None) -> float:
        """Posterior probability of one (object, value)."""
        return self._snapshot(version).probability(obj, value)

    def distribution(self, obj, *, version: int | None = None) -> dict:
        """Full value distribution of one object."""
        return self._snapshot(version).distribution(obj)

    def recommend(self, k: int, *, version: int | None = None, **kwargs) -> list:
        """Dependence-penalised top-``k`` sources from a published round."""
        from repro.recommend.scoring import recommend_from_snapshot

        return recommend_from_snapshot(self._snapshot(version), k, **kwargs)

    def explain_dependence(
        self, source, other=None, *, version: int | None = None, **kwargs
    ):
        """A source's dependence neighbourhood (or one pair's posterior)."""
        snapshot = self._snapshot(version)
        if other is not None:
            return {
                "source": source,
                "other": other,
                "p_dependent": snapshot.dependence_probability(source, other),
                "p_copies_other": snapshot.directed_probability(source, other),
            }
        return snapshot.explain_dependence(source, **kwargs)

    @property
    def dead_letters(self) -> tuple[QuarantinedBatch, ...]:
        """Quarantined feed batches, oldest first (bounded; see stats)."""
        return tuple(self._dead_letters)

    @property
    def quarantined_total(self) -> int:
        """Every batch ever quarantined, including evicted ones."""
        return self._quarantined_total

    def execution_health(self) -> dict:
        """The evidence layer's supervised-executor health (see cache)."""
        return self._engine.execution_health()

    def _serving_health(self) -> dict:
        return {
            "quarantine_depth": len(self._dead_letters),
            "quarantined_total": self._quarantined_total,
            "pending_batches": len(self._pending),
            "execution": self.execution_health(),
        }

    def serving(self, *, refresh_interval: float = 0.05) -> ServingEngine:
        """An asyncio front-end over this session's store.

        The engine's background loop drives :meth:`refresh` — drain the
        feed, re-run truth, publish — while readers await ``query`` /
        ``recommend`` / ``explain_dependence`` concurrently. The
        engine's ``health()`` folds in this session's quarantine and
        supervised-execution state.
        """
        return ServingEngine(
            self.store,
            self.refresh,
            refresh_interval=refresh_interval,
            health_hook=self._serving_health,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Store, discover and truth counters in one place."""
        return {
            "store": self.store.stats(),
            "discover": dict(self._engine.last_discover_stats),
            "truth": dict(self._engine.last_truth_stats),
            "claims": len(self.dataset),
            "pending": sum(len(batch) for batch in self._pending),
            "dirty": self.dirty,
            "quarantined": len(self._dead_letters),
            "quarantined_total": self._quarantined_total,
        }

    def close(self) -> None:
        """Release executor workers held by the evidence cache."""
        self._engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        latest = self.store.stats()["latest_version"]
        return (
            f"Session({len(self.dataset)} claims, "
            f"latest snapshot {latest}, "
            f"{'dirty' if self.dirty else 'clean'})"
        )
