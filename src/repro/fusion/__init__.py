"""Data fusion: fused/probabilistic relations, probabilistic-answer combination."""

from repro.fusion.fuser import (
    DataFusion,
    FusedRow,
    FusionResult,
    ProbabilisticRow,
)
from repro.fusion.probdb import (
    combination_gap,
    dependent_combination,
    independent_combination,
)

__all__ = [
    "DataFusion",
    "FusedRow",
    "FusionResult",
    "ProbabilisticRow",
    "combination_gap",
    "dependent_combination",
    "independent_combination",
]
