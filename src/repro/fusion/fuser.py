"""Data fusion: one clean (or probabilistic) relation out of many dirty ones.

Section 4, "Data fusion": "When deciding the truth from conflicting
values, we would like to ignore values that are copied (but not
necessarily the values independently provided by copiers). We can either
determine one true value for each object, or identify a probabilistic
distribution of possible values for each object and generate a
probabilistic database."

:class:`DataFusion` wraps a truth-discovery algorithm (DEPEN by default)
and renders its result both ways: a deterministic fused relation with
per-row confidence and provenance, and a probabilistic relation listing
every candidate value with its posterior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError
from repro.truth.base import TruthDiscovery, TruthResult
from repro.truth.depen import Depen


@dataclass(frozen=True, slots=True)
class FusedRow:
    """One row of a fused relation: the chosen value and its pedigree."""

    object: ObjectId
    value: Value
    confidence: float
    supporters: tuple[SourceId, ...]
    independent_support: float


@dataclass(frozen=True, slots=True)
class ProbabilisticRow:
    """One candidate of a probabilistic relation."""

    object: ObjectId
    value: Value
    probability: float


class DataFusion:
    """Fuse conflicting claims into a clean or probabilistic relation."""

    def __init__(
        self,
        discovery: TruthDiscovery | None = None,
        copy_rate: float = 0.8,
    ) -> None:
        self.discovery = discovery or Depen()
        self.copy_rate = copy_rate

    def fuse(self, dataset: ClaimDataset) -> "FusionResult":
        """Run truth discovery and package the fused output."""
        result = self.discovery.discover(dataset)
        return FusionResult(dataset, result, self.copy_rate)


class FusionResult:
    """Fused views over a discovery result."""

    def __init__(
        self,
        dataset: ClaimDataset,
        truth: TruthResult,
        copy_rate: float = 0.8,
    ) -> None:
        self.dataset = dataset
        self.truth = truth
        self.copy_rate = copy_rate

    def fused_rows(self) -> list[FusedRow]:
        """The deterministic fused relation, one row per object."""
        rows = []
        for obj in self.dataset.objects:
            value = self.truth.decisions[obj]
            supporters = tuple(sorted(self.dataset.providers_of(obj, value)))
            rows.append(
                FusedRow(
                    object=obj,
                    value=value,
                    confidence=self.truth.probability(obj, value),
                    supporters=supporters,
                    independent_support=self._independent_support(supporters),
                )
            )
        return rows

    def probabilistic_rows(self, min_probability: float = 0.0) -> list[ProbabilisticRow]:
        """The probabilistic relation: every candidate value above a floor."""
        if not 0.0 <= min_probability <= 1.0:
            raise DataError(
                f"min_probability must be in [0, 1], got {min_probability}"
            )
        rows = []
        for obj in self.dataset.objects:
            for value, probability in sorted(
                self.truth.distributions[obj].items(), key=lambda kv: repr(kv[0])
            ):
                if probability >= min_probability:
                    rows.append(
                        ProbabilisticRow(
                            object=obj, value=value, probability=probability
                        )
                    )
        return rows

    def _independent_support(self, supporters: tuple[SourceId, ...]) -> float:
        """Dependence-discounted count of a value's supporters.

        "Ignore values that are copied, but not necessarily the values
        independently provided by copiers": each supporter contributes
        its probability of having provided the value independently of
        supporters already counted.
        """
        dependence = self.truth.dependence
        if dependence is None:
            return float(len(supporters))
        ordered = sorted(
            supporters,
            key=lambda s: (-self.truth.accuracies.get(s, 0.5), s),
        )
        total = 0.0
        counted: list[SourceId] = []
        for source in ordered:
            total += dependence.independence_weight(
                source, counted, self.copy_rate
            )
            counted.append(source)
        return total
