"""Combining probabilistic answers across sources, with and without independence.

Section 4: "When integrating answers from sources of probabilistic data,
current techniques assume independence of sources and compute the
probability of an answer tuple as the disjoint probability of its
probabilities from each data source. Removing the independence
assumption can significantly change the computation."

Given per-source probabilities ``p_i`` that an answer tuple holds:

* the classic combination is ``1 - Π(1 - p_i)`` (noisy-or / disjoint
  probability) — :func:`independent_combination`;
* the dependence-aware combination first scales each source's assertion
  by the probability it was made independently of the sources already
  combined, then applies the same noisy-or —
  :func:`dependent_combination`. A clique of copiers all asserting 0.9
  then contributes barely more than one of them would.
"""

from __future__ import annotations

from repro.core.types import SourceId
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError


def _check_probabilities(assertions: dict[SourceId, float]) -> None:
    if not assertions:
        raise DataError("no source assertions to combine")
    for source, p in assertions.items():
        if not 0.0 <= p <= 1.0:
            raise DataError(
                f"probability from {source!r} must be in [0, 1], got {p}"
            )


def independent_combination(assertions: dict[SourceId, float]) -> float:
    """Noisy-or combination assuming source independence."""
    _check_probabilities(assertions)
    miss = 1.0
    for p in assertions.values():
        miss *= 1.0 - p
    return 1.0 - miss


def dependent_combination(
    assertions: dict[SourceId, float],
    dependence: DependenceGraph,
    copy_rate: float = 0.8,
    accuracies: dict[SourceId, float] | None = None,
) -> float:
    """Noisy-or with each assertion discounted by its independence weight.

    Sources are combined most-credible first (by ``accuracies`` when
    given, else lexicographically), and each subsequent source's
    assertion probability is scaled by
    ``Π (1 - copy_rate·P(dep(source, counted)))`` — the same discount
    DEPEN applies to votes.
    """
    _check_probabilities(assertions)
    ordered = sorted(
        assertions,
        key=lambda s: (-(accuracies or {}).get(s, 0.5), s),
    )
    miss = 1.0
    counted: list[SourceId] = []
    for source in ordered:
        weight = dependence.independence_weight(source, counted, copy_rate)
        miss *= 1.0 - assertions[source] * weight
        counted.append(source)
    return 1.0 - miss


def combination_gap(
    assertions: dict[SourceId, float],
    dependence: DependenceGraph,
    copy_rate: float = 0.8,
    accuracies: dict[SourceId, float] | None = None,
) -> float:
    """How much the independence assumption inflates an answer probability."""
    return independent_combination(assertions) - dependent_combination(
        assertions, dependence, copy_rate, accuracies
    )
