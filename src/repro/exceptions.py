"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class. Modules raise
the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DataError(ReproError):
    """A dataset or claim violates a structural constraint.

    Examples: duplicate claim for the same (source, object) in a snapshot
    dataset, an empty dataset passed to an algorithm that needs data, or a
    probability outside ``[0, 1]``.
    """


class ParameterError(ReproError, ValueError):
    """A model or algorithm parameter is outside its valid domain."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to make progress.

    Raised only when ``fail_on_max_rounds=True`` is requested; by default
    iterative algorithms return the best state reached at the round cap.
    """


class OverlapCalibrationWarning(UserWarning):
    """The configured evidence model is outside its calibrated regime.

    Emitted (once per structural state) by the evidence engine when the
    aggressive default model combination — ``evidence_form=
    "expected_log"`` with ``false_value_model="uniform"`` — meets a
    candidate pair whose overlap reaches
    :attr:`~repro.core.params.DependenceParams.overlap_warning_bound`.
    At that scale the probability-weighted log-likelihood is known to
    over-detect dependence (184 false positives on a 200-object,
    20-source world at threshold 0.9); switch to
    ``false_value_model="empirical"`` or ``evidence_form="marginal"``,
    or set ``overlap_warning_bound=None`` after verifying the workload.
    """


class ExecutorFailureWarning(UserWarning):
    """A parallel-execution backend failed and was discarded or replaced.

    Emitted when a worker pool breaks (``BrokenProcessPool`` — the pool
    is torn down before the error propagates so no dead workers
    linger), and when a :class:`~repro.exec.supervisor.SupervisedExecutor`
    steps down the degradation ladder after exhausting its retries.
    Results are unaffected in both cases — every backend is
    merge-canonicalised to bit-for-bit identical output — only the
    transport changes, so a warning (naming the failed backend) is the
    right severity: visible in logs and ``-W error`` runs, fatal to
    neither.
    """


class LinkageError(ReproError):
    """Record-linkage input could not be parsed or clustered."""


class QueryError(ReproError):
    """A query is malformed or references an unknown catalog field."""


class ServeError(ReproError):
    """The online serving layer was used outside its contract.

    Examples: querying a session or engine that has published no
    snapshot yet, requesting a snapshot version the store has evicted,
    re-publishing an already-published snapshot, or loading a persisted
    snapshot whose files fail their integrity fingerprint.
    """
