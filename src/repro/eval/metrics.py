"""Evaluation metrics for truth discovery and dependence detection.

Everything the benchmarks report is computed here: truth accuracy,
detection precision/recall/F1 against planted edges, threshold sweeps,
timeline accuracy for the temporal setting, and consensus error for the
opinion setting.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.claims import ValuePeriod
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class DetectionScore:
    """Precision / recall / F1 of a detected pair set vs the planted one."""

    precision: float
    recall: float
    true_positives: int
    detected: int
    planted: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return (
            2 * self.precision * self.recall / (self.precision + self.recall)
        )


def detection_score(
    detected: set[frozenset[SourceId]],
    planted: set[frozenset[SourceId]],
) -> DetectionScore:
    """Score detected dependent pairs against the planted ground truth.

    An empty detected set has precision 1.0 by convention (nothing
    claimed, nothing wrong); an empty planted set likewise has recall
    1.0.
    """
    hits = len(detected & planted)
    return DetectionScore(
        precision=hits / len(detected) if detected else 1.0,
        recall=hits / len(planted) if planted else 1.0,
        true_positives=hits,
        detected=len(detected),
        planted=len(planted),
    )


def threshold_sweep(
    pair_probabilities: Mapping[frozenset[SourceId], float],
    planted: set[frozenset[SourceId]],
    thresholds: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> list[tuple[float, DetectionScore]]:
    """Detection scores across decision thresholds (a PR-curve skeleton)."""
    results = []
    for threshold in thresholds:
        if not 0.0 <= threshold <= 1.0:
            raise DataError(f"threshold must be in [0, 1], got {threshold}")
        detected = {
            pair
            for pair, probability in pair_probabilities.items()
            if probability >= threshold
        }
        results.append((threshold, detection_score(detected, planted)))
    return results


def truth_accuracy(
    decisions: Mapping[ObjectId, Value], truth: Mapping[ObjectId, Value]
) -> float:
    """Fraction of ground-truth objects decided correctly."""
    if not truth:
        raise DataError("ground truth must not be empty")
    correct = sum(
        1 for obj, value in truth.items() if decisions.get(obj) == value
    )
    return correct / len(truth)


def timeline_accuracy(
    inferred: Mapping[ObjectId, list[ValuePeriod]],
    true: Mapping[ObjectId, list[ValuePeriod]],
    grid: int = 50,
) -> float:
    """Fraction of sampled (object, time) points where the values agree.

    Both timelines are sampled on a uniform grid over the true timeline's
    span; the final open-ended periods are compared at the last grid
    point too.
    """
    if grid < 2:
        raise DataError(f"grid must be >= 2, got {grid}")
    if not true:
        raise DataError("true timelines must not be empty")
    agree = 0
    total = 0
    for obj, true_periods in true.items():
        start = true_periods[0].start
        last_transition = max(
            (p.end for p in true_periods if p.end is not None),
            default=start,
        )
        # The final period is open-ended; give it the mean closed-period
        # length of sampled time so it is evaluated too.
        closed = len(true_periods) - 1
        if closed > 0:
            tail = (last_transition - start) / closed
        else:
            tail = 1.0
        end = last_transition + max(tail, 1e-9)
        inferred_periods = inferred.get(obj, [])
        for i in range(grid):
            t = start + (end - start) * (i + 0.5) / grid
            true_value = next(
                (p.value for p in true_periods if p.contains(t)), None
            )
            inferred_value = next(
                (p.value for p in inferred_periods if p.contains(t)), None
            )
            total += 1
            if true_value == inferred_value:
                agree += 1
    return agree / total


def consensus_error(
    estimated: Mapping[ObjectId, float],
    reference: Mapping[ObjectId, float],
) -> float:
    """Mean absolute error between two per-item mean-score maps."""
    if not reference:
        raise DataError("reference scores must not be empty")
    missing = [item for item in reference if item not in estimated]
    if missing:
        raise DataError(f"estimated scores missing items: {missing[:3]}")
    return sum(
        abs(estimated[item] - reference[item]) for item in reference
    ) / len(reference)


def distribution_l1(
    estimated: Mapping[ObjectId, Mapping[Value, float]],
    reference: Mapping[ObjectId, Mapping[Value, float]],
) -> float:
    """Mean L1 distance between per-item distributions."""
    if not reference:
        raise DataError("reference distributions must not be empty")
    total = 0.0
    for item, ref_dist in reference.items():
        est_dist = estimated.get(item, {})
        support = set(ref_dist) | set(est_dist)
        total += sum(
            abs(est_dist.get(v, 0.0) - ref_dist.get(v, 0.0)) for v in support
        )
    return total / len(reference)


def area_under_quality_curve(qualities: Sequence[float]) -> float:
    """Mean anytime quality — higher = faster convergence (online querying)."""
    if not qualities:
        raise DataError("quality series is empty")
    return sum(qualities) / len(qualities)
