"""Evaluation: metrics, ASCII tables, experiment harness helpers."""

from repro.eval.experiments import compare_algorithms, pair_probabilities, timed
from repro.eval.metrics import (
    DetectionScore,
    area_under_quality_curve,
    consensus_error,
    detection_score,
    distribution_l1,
    threshold_sweep,
    timeline_accuracy,
    truth_accuracy,
)
from repro.eval.tables import render_series, render_table

__all__ = [
    "DetectionScore",
    "area_under_quality_curve",
    "compare_algorithms",
    "consensus_error",
    "detection_score",
    "distribution_l1",
    "pair_probabilities",
    "render_series",
    "render_table",
    "threshold_sweep",
    "timed",
    "timeline_accuracy",
    "truth_accuracy",
]
