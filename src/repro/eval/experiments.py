"""Experiment harness helpers used by ``benchmarks/``.

Small, composable pieces: run a set of truth-discovery algorithms on one
dataset and tabulate them, time a callable, and pull pair-probability
maps out of dependence graphs for sweeps.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.graph import DependenceGraph
from repro.eval.metrics import truth_accuracy
from repro.exceptions import DataError
from repro.truth.base import TruthDiscovery


def compare_algorithms(
    dataset: ClaimDataset,
    truth: Mapping[ObjectId, Value],
    algorithms: Sequence[TruthDiscovery],
) -> list[dict[str, object]]:
    """Run each algorithm and report accuracy, rounds and runtime."""
    if not algorithms:
        raise DataError("no algorithms to compare")
    rows = []
    for algorithm in algorithms:
        started = time.perf_counter()
        result = algorithm.discover(dataset)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "algorithm": algorithm.name,
                "accuracy": truth_accuracy(result.decisions, truth),
                "rounds": result.rounds,
                "seconds": elapsed,
            }
        )
    return rows


def pair_probabilities(
    graph: DependenceGraph,
) -> dict[frozenset[SourceId], float]:
    """Extract ``{pair: dependence posterior}`` for threshold sweeps."""
    return {
        frozenset((pair.s1, pair.s2)): pair.p_dependent for pair in graph
    }


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once, returning (result, seconds)."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
