"""ASCII rendering of result tables and series for the bench harness.

The benches print the rows/series the paper reports; these helpers keep
that output aligned and consistent without pulling in a formatting
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import DataError


def format_cell(value: object, precision: int = 3) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table with a header rule."""
    if not headers:
        raise DataError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise DataError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    cells = [
        [format_cell(value, precision) for value in row] for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells), 1)
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    name: str, values: Sequence[float], precision: int = 3
) -> str:
    """Render one named numeric series on a single line."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{body}]"
