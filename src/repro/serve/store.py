"""Versioned snapshot store: latest-wins publication, lock-free reads.

The coordination point between one (or more) publishing writers and any
number of concurrent readers. Publication is an atomic pointer swap:
``publish`` stamps the snapshot with the next monotonic version, builds
a *new* version map, and swaps both references under the writer mutex —
readers never take a lock, they read ``latest`` / ``get`` against
whichever immutable map reference they observe, and either see the old
snapshot or the new one in full, never a mixture (the snapshot itself is
immutable, so there is nothing half-updated to see).

Retention is bounded: the store keeps the most recent ``retention``
versions plus any version a reader has *pinned* (``pin`` hands out a
context manager; a pinned version survives eviction until every pin is
released). The read side follows the one-module
fetch/cache/stats/clear idiom — ``get``/``latest`` fetch, ``stats``
reports, ``clear`` drops everything unpinned.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from types import MappingProxyType

from repro.exceptions import ServeError
from repro.serve.snapshot import Snapshot


class SnapshotStore:
    """Bounded, versioned map of published snapshots.

    ``retention`` is the number of most-recent versions kept reachable
    for unpinned readers; it must be >= 1 (the latest snapshot is always
    reachable).
    """

    def __init__(self, retention: int = 8) -> None:
        if retention < 1:
            raise ServeError(f"retention must be >= 1, got {retention}")
        self.retention = retention
        self._write_lock = threading.Lock()
        self._latest: Snapshot | None = None
        # Swapped wholesale under the write lock; read without locks.
        self._by_version: dict[int, Snapshot] = {}
        self._next_version = 1
        self._pins: dict[int, int] = {}
        self._stats = {
            "published": 0,
            "evicted": 0,
            "reads": 0,
            "pinned_reads": 0,
            "misses": 0,
        }

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------

    def publish(self, snapshot: Snapshot) -> Snapshot:
        """Stamp the snapshot with the next version and make it latest.

        Returns the same (now stamped) snapshot. Versions a snapshot
        arrives with are rejected — the store owns the version sequence,
        which is what makes "exactly one published snapshot version per
        answer" checkable.
        """
        if snapshot.version is not None:
            raise ServeError(
                f"snapshot is already published as version "
                f"{snapshot.version}; build a fresh snapshot per round"
            )
        with self._write_lock:
            version = self._next_version
            self._next_version += 1
            snapshot._stamp(version)
            table = dict(self._by_version)
            table[version] = snapshot
            floor = version - self.retention
            for old in [
                v for v in table if v <= floor and not self._pins.get(v)
            ]:
                del table[old]
                self._stats["evicted"] += 1
            # Swap the map first: a reader observing the new latest must
            # be able to resolve its version through get().
            self._by_version = table
            self._latest = snapshot
            self._stats["published"] += 1
        return snapshot

    # ------------------------------------------------------------------
    # reader side (lock-free)
    # ------------------------------------------------------------------

    @property
    def latest(self) -> Snapshot:
        """The most recently published snapshot."""
        snapshot = self._latest
        if snapshot is None:
            raise ServeError("no snapshot published yet")
        self._stats["reads"] += 1
        return snapshot

    def get(self, version: int | None = None) -> Snapshot:
        """One snapshot by version; latest when ``version`` is ``None``."""
        if version is None:
            return self.latest
        snapshot = self._by_version.get(version)
        if snapshot is None:
            self._stats["misses"] += 1
            raise ServeError(
                f"snapshot version {version} is not in the store "
                f"(retention {self.retention}; "
                f"available: {self.versions()})"
            )
        self._stats["pinned_reads"] += 1
        return snapshot

    def versions(self) -> list[int]:
        """Currently resolvable versions, ascending."""
        return sorted(self._by_version)

    def __len__(self) -> int:
        return len(self._by_version)

    @contextmanager
    def pin(self, version: int | None = None):
        """Pin one version against eviction for the duration of a read.

        Yields the pinned snapshot. While any pin on a version is held,
        ``publish`` will not evict it even when it falls out of the
        retention window; the last release drops it if it is stale.
        """
        with self._write_lock:
            snapshot = (
                self._latest if version is None else self._by_version.get(version)
            )
            if snapshot is None:
                raise ServeError(
                    "cannot pin: no snapshot published yet"
                    if version is None
                    else f"cannot pin: version {version} is not in the store"
                )
            pinned = snapshot.version
            self._pins[pinned] = self._pins.get(pinned, 0) + 1
        try:
            yield snapshot
        finally:
            with self._write_lock:
                self._pins[pinned] -= 1
                if self._pins[pinned] <= 0:
                    del self._pins[pinned]
                    latest = self._latest
                    floor = (
                        latest.version - self.retention
                        if latest is not None and latest.version is not None
                        else None
                    )
                    if floor is not None and pinned <= floor:
                        table = dict(self._by_version)
                        if table.pop(pinned, None) is not None:
                            self._stats["evicted"] += 1
                            self._by_version = table

    # ------------------------------------------------------------------
    # stats / clear (the cache-module idiom)
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Publication/read/eviction counters plus the live extent."""
        return {
            **self._stats,
            "resident": len(self._by_version),
            "pinned": len(self._pins),
            "latest_version": (
                None if self._latest is None else self._latest.version
            ),
        }

    def pins(self) -> MappingProxyType:
        """Read-only view of the live pin counts (diagnostics)."""
        return MappingProxyType(self._pins)

    def clear(self) -> int:
        """Drop every unpinned snapshot (including latest); return count.

        Pinned versions stay resolvable through :meth:`get` until their
        pins release. The version sequence keeps counting — a cleared
        store never reissues a version.
        """
        with self._write_lock:
            table = {
                v: s for v, s in self._by_version.items() if self._pins.get(v)
            }
            dropped = len(self._by_version) - len(table)
            self._stats["evicted"] += dropped
            self._by_version = table
            self._latest = None
        return dropped
