"""Immutable, versioned snapshots of a published truth round.

The serving layer's unit of consistency. Each completed truth round
(DEPEN/ACCU directly, or :meth:`StreamingDependenceEngine.run_truth`
behind a :class:`~repro.session.Session`) is frozen into one
:class:`Snapshot`: the :class:`~repro.truth.columnar.ValueProbTable`'s
CSR arrays (per-object slot segments, slot probabilities, provider
counts), the winning slot per object, per-source accuracies and
coverage, and the dependence graph's columnar export — every array
read-only, every list a tuple. A reader holding a snapshot can answer
``query`` / ``recommend`` / ``explain_dependence`` calls forever without
locks, and two readers of the same snapshot always see bit-for-bit the
same answers, no matter how many rounds the writer publishes meanwhile.

A snapshot is *stamped* with its serving ``version`` exactly once —
normally by :meth:`~repro.serve.store.SnapshotStore.publish` — and
carries the ``dataset_version`` and ``round_id`` of the truth round it
froze. ``dataset_version`` is the dataset's *mutation-log* version: the
:class:`~repro.core.dataset.ClaimDataset` counter that every add,
retraction and correction advances, so a snapshot states exactly which
prefix of the mutation log it reflects (:attr:`Snapshot.mutation_version`
spells this out). :meth:`fingerprint` digests all array bytes plus the
metadata, so torn reads and persistence corruption are detectable as
inequality of a single hex string.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

from repro.core.dataset import ClaimDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import ParameterError, ServeError
from repro.truth.base import TruthResult
from repro.truth.columnar import ValueProbTable

#: The arrays every snapshot carries, in fingerprint/persistence order.
ARRAY_FIELDS = (
    "bounds",
    "counts",
    "probs",
    "winners",
    "accuracies",
    "coverage",
    "pair_s1",
    "pair_s2",
    "p_dependent",
    "p_s1_copies",
    "p_s2_copies",
)


@dataclass(frozen=True, slots=True)
class ServedAnswer:
    """One query's answer, tagged with the snapshot that produced it."""

    object: ObjectId
    value: Value
    probability: float
    version: int | None
    dataset_version: int


class Snapshot:
    """One truth round, frozen for lock-free concurrent reads.

    Build through :meth:`from_result` (the normal path) or hand the
    constructor pre-frozen arrays (the persistence loader does). All
    array arguments must be read-only; the constructor re-checks rather
    than trusting callers, because a writable array would silently void
    the whole layer's consistency guarantee.
    """

    __slots__ = (
        "objects",
        "sources",
        "slot_values",
        "bounds",
        "counts",
        "probs",
        "winners",
        "accuracies",
        "coverage",
        "pair_s1",
        "pair_s2",
        "p_dependent",
        "p_s1_copies",
        "p_s2_copies",
        "dataset_version",
        "round_id",
        "_version",
        "_row_of",
        "_slot_of",
        "_src_code",
        "_adjacent",
        "_fingerprint",
    )

    def __init__(
        self,
        *,
        objects: tuple,
        sources: tuple,
        slot_values: tuple,
        arrays: Mapping[str, "np.ndarray"],
        dataset_version: int,
        round_id: int,
        version: int | None = None,
    ) -> None:
        if np is None:  # pragma: no cover - numpy ships with the toolchain
            raise ParameterError(
                "the serving layer needs numpy for its frozen arrays"
            )
        self.objects = tuple(objects)
        self.sources = tuple(sources)
        self.slot_values = tuple(slot_values)
        missing = [name for name in ARRAY_FIELDS if name not in arrays]
        if missing:
            raise ServeError(f"snapshot arrays missing {missing}")
        for name in ARRAY_FIELDS:
            arr = arrays[name]
            if arr.flags.writeable:
                raise ServeError(
                    f"snapshot array {name!r} is writable — freeze it "
                    "(writeable=False) before publication"
                )
            setattr(self, name, arr)
        if len(self.winners) != len(self.objects):
            raise ServeError(
                f"{len(self.winners)} winners for {len(self.objects)} objects"
            )
        if len(self.accuracies) != len(self.sources):
            raise ServeError(
                f"{len(self.accuracies)} accuracies for "
                f"{len(self.sources)} sources"
            )
        self.dataset_version = dataset_version
        self.round_id = round_id
        self._version = version
        # Read-side indexes, built once at publication: object -> row,
        # per-object value -> slot, source -> code, and the dependence
        # adjacency (code -> [(other code, pair index)]).
        self._row_of = {obj: row for row, obj in enumerate(self.objects)}
        bounds = self.bounds.tolist()
        slot_of: dict[ObjectId, dict[Value, int]] = {}
        for row, obj in enumerate(self.objects):
            lo, hi = bounds[row], bounds[row + 1]
            slot_of[obj] = {
                self.slot_values[slot]: slot for slot in range(lo, hi)
            }
        self._slot_of = slot_of
        self._src_code = {source: i for i, source in enumerate(self.sources)}
        adjacent: dict[int, list[tuple[int, int]]] = {}
        for k, (i, j) in enumerate(
            zip(self.pair_s1.tolist(), self.pair_s2.tolist())
        ):
            adjacent.setdefault(i, []).append((j, k))
            adjacent.setdefault(j, []).append((i, k))
        self._adjacent = adjacent
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        dataset: ClaimDataset,
        result: TruthResult,
        *,
        round_id: int | None = None,
        version: int | None = None,
    ) -> "Snapshot":
        """Freeze one truth-discovery result over its dataset.

        The value-probability CSR arrays are rebuilt through
        :class:`~repro.truth.columnar.ValueProbTable` (so the slot
        universe and segment order are exactly the columnar engines'),
        accuracies and coverage are gathered per sorted source, and the
        result's dependence graph — if any — is exported columnar.
        Sources without an accuracy estimate (naive voting) freeze 0.0.
        """
        table = ValueProbTable(dataset, result.distributions)
        frozen = table.freeze()
        winners = np.empty(len(frozen["objects"]), dtype=np.int64)
        for row, obj in enumerate(frozen["objects"]):
            winners[row] = table.slot(obj, result.decisions[obj])
        sources = tuple(dataset.sources)
        accuracies = np.asarray(
            [result.accuracies.get(s, 0.0) for s in sources],
            dtype=np.float64,
        )
        coverage = np.asarray(
            [dataset.coverage(s) for s in sources], dtype=np.int64
        )
        for arr in (winners, accuracies, coverage):
            arr.flags.writeable = False
        if result.dependence is not None:
            dep = result.dependence.export_arrays(list(sources))
        else:
            dep = _empty_dependence()
        arrays = {
            "bounds": frozen["bounds"],
            "counts": frozen["counts"],
            "probs": frozen["probs"],
            "winners": winners,
            "accuracies": accuracies,
            "coverage": coverage,
            **dep,
        }
        return cls(
            objects=frozen["objects"],
            sources=sources,
            slot_values=frozen["slot_values"],
            arrays=arrays,
            dataset_version=frozen["dataset_version"],
            round_id=result.rounds if round_id is None else round_id,
            version=version,
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def version(self) -> int | None:
        """The serving version, once stamped by a store (else ``None``)."""
        return self._version

    @property
    def mutation_version(self) -> int:
        """The mutation-log version of the dataset state this round froze.

        Every mutation — add, retraction, correction — applied at or
        below this version is reflected in the frozen arrays; anything
        logged later is not. The same number as :attr:`dataset_version`
        (a :class:`~repro.core.dataset.ClaimDataset` has exactly one
        version counter, advanced by its mutation log), surfaced under
        its precise name for the serving layer's consistency story.
        """
        return self.dataset_version

    def _stamp(self, version: int) -> None:
        """Assign the serving version; exactly once, by the store."""
        if self._version is not None:
            raise ServeError(
                f"snapshot already published as version {self._version}; "
                "a snapshot is immutable once stamped"
            )
        self._version = version

    def fingerprint(self) -> str:
        """SHA-256 over every array's bytes plus the metadata (hex).

        Two snapshots with equal fingerprints answer every query
        bit-for-bit identically; the digest is cached (the arrays cannot
        change) and is what the persistence layer and the no-torn-reads
        tests compare.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(
                repr(
                    (
                        self.objects,
                        self.sources,
                        self.slot_values,
                        self.dataset_version,
                        self.round_id,
                    )
                ).encode()
            )
            for name in ARRAY_FIELDS:
                arr = getattr(self, name)
                digest.update(name.encode())
                digest.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __len__(self) -> int:
        return len(self.slot_values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        stamp = "unpublished" if self._version is None else f"v{self._version}"
        return (
            f"Snapshot({stamp}, {len(self.objects)} objects, "
            f"{len(self.sources)} sources, round {self.round_id}, "
            f"dataset v{self.dataset_version})"
        )

    # ------------------------------------------------------------------
    # truth reads
    # ------------------------------------------------------------------

    def _row(self, obj: ObjectId) -> int:
        try:
            return self._row_of[obj]
        except KeyError:
            raise ServeError(
                f"object {obj!r} is not covered by this snapshot "
                f"(dataset v{self.dataset_version})"
            ) from None

    def answer(self, obj: ObjectId) -> ServedAnswer:
        """The served truth for one object: winning value + probability."""
        row = self._row(obj)
        slot = int(self.winners[row])
        return ServedAnswer(
            object=obj,
            value=self.slot_values[slot],
            probability=float(self.probs[slot]),
            version=self._version,
            dataset_version=self.dataset_version,
        )

    def probability(self, obj: ObjectId, value: Value) -> float:
        """Posterior probability of one (object, value); 0.0 if unobserved."""
        slot = self._slot_of.get(obj)
        if slot is None:
            self._row(obj)  # uniform unknown-object error
        idx = slot.get(value)
        return 0.0 if idx is None else float(self.probs[idx])

    def distribution(self, obj: ObjectId) -> dict[Value, float]:
        """The full value distribution of one object (a fresh dict)."""
        row = self._row(obj)
        lo, hi = int(self.bounds[row]), int(self.bounds[row + 1])
        return {
            self.slot_values[slot]: float(self.probs[slot])
            for slot in range(lo, hi)
        }

    def decisions(self) -> dict[ObjectId, Value]:
        """All winning values, as the classic decisions dict."""
        return {
            obj: self.slot_values[slot]
            for obj, slot in zip(self.objects, self.winners.tolist())
        }

    # ------------------------------------------------------------------
    # source reads
    # ------------------------------------------------------------------

    def _code(self, source: SourceId) -> int:
        try:
            return self._src_code[source]
        except KeyError:
            raise ServeError(
                f"source {source!r} is not covered by this snapshot"
            ) from None

    def accuracy(self, source: SourceId) -> float:
        """The frozen accuracy estimate of one source."""
        return float(self.accuracies[self._code(source)])

    def source_coverage(self, source: SourceId) -> int:
        """Objects the source covered at freeze time."""
        return int(self.coverage[self._code(source)])

    def dependence_probability(self, s1: SourceId, s2: SourceId) -> float:
        """Total dependence posterior of a pair (0.0 if unanalysed)."""
        i, j = self._code(s1), self._code(s2)
        if i > j:
            i, j = j, i
        for other, k in self._adjacent.get(i, ()):
            if other == j:
                return float(self.p_dependent[k])
        return 0.0

    def directed_probability(
        self, copier: SourceId, original: SourceId
    ) -> float:
        """Posterior that ``copier`` copies ``original`` (0.0 if unanalysed)."""
        i, j = self._code(copier), self._code(original)
        lo, hi = (i, j) if i < j else (j, i)
        for other, k in self._adjacent.get(lo, ()):
            if other == hi:
                directed = (
                    self.p_s1_copies if i == lo else self.p_s2_copies
                )
                return float(directed[k])
        return 0.0

    def dependence_score(self, source: SourceId) -> float:
        """Max dependence posterior over the source's analysed pairs."""
        code = self._code(source)
        pairs = self._adjacent.get(code)
        if not pairs:
            return 0.0
        return max(float(self.p_dependent[k]) for _, k in pairs)

    def explain_dependence(
        self, source: SourceId, threshold: float = 0.0
    ) -> list[dict]:
        """The source's dependence neighbourhood, strongest pair first.

        Each entry reports the partner, the total posterior, and the
        directed posterior that *this* source is the copier — the
        "explanation" the recommendation surface shows next to a
        penalised source.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ServeError(
                f"threshold must be in [0, 1], got {threshold}"
            )
        code = self._code(source)
        entries = []
        for other, k in self._adjacent.get(code, ()):
            p = float(self.p_dependent[k])
            if p < threshold:
                continue
            directed = (
                self.p_s1_copies
                if code == int(self.pair_s1[k])
                else self.p_s2_copies
            )
            entries.append(
                {
                    "source": source,
                    "other": self.sources[other],
                    "p_dependent": p,
                    "p_copies_other": float(directed[k]),
                }
            )
        entries.sort(key=lambda e: (-e["p_dependent"], repr(e["other"])))
        return entries


def _empty_dependence() -> dict:
    """The dependence export of a result without a graph (all independent)."""
    arrays = {
        "pair_s1": np.empty(0, dtype=np.int64),
        "pair_s2": np.empty(0, dtype=np.int64),
        "p_dependent": np.empty(0, dtype=np.float64),
        "p_s1_copies": np.empty(0, dtype=np.float64),
        "p_s2_copies": np.empty(0, dtype=np.float64),
    }
    for arr in arrays.values():
        arr.flags.writeable = False
    return arrays
