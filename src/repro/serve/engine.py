"""Asyncio serving front-end: concurrent reads over published snapshots.

:class:`ServingEngine` is the production shape ROADMAP item 2 asks for:
many readers answering ``query`` / ``recommend`` / ``explain_dependence``
calls concurrently while a background loop keeps ingesting claims,
re-running truth rounds and publishing fresh snapshots. The read path
never blocks on the write path — every answer is computed against one
immutable snapshot resolved at call start (latest-wins, or an explicit
pinned version), so a publish landing mid-call cannot tear an answer.

The refresh loop runs the caller's ``refresh`` callable (typically
:meth:`Session.refresh <repro.session.Session.refresh>` over pending
ingest) in the default executor, keeping the event loop free to serve
queries while a truth round computes. The feed it drains is the full
mutation algebra, not just appends: producers queue
:class:`~repro.core.dataset.MutationBatch` objects carrying adds,
retractions and corrections through
:meth:`Session.feed <repro.session.Session.feed>`, and each refresh
applies them in arrival order before re-running truth — the published
:class:`~repro.serve.snapshot.Snapshot` records the mutation-log
version it reflects (:attr:`Snapshot.mutation_version
<repro.serve.snapshot.Snapshot.mutation_version>`).
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable

from repro.exceptions import ServeError
from repro.recommend.scoring import (
    ScoreWeights,
    recommend_from_snapshot,
    snapshot_scorecards,
)
from repro.serve.snapshot import ServedAnswer, Snapshot
from repro.serve.store import SnapshotStore


class ServingEngine:
    """Async read surface over a :class:`~repro.serve.store.SnapshotStore`.

    Parameters
    ----------
    store:
        The snapshot store readers resolve against (borrowed — its
        lifecycle belongs to the caller, usually a
        :class:`~repro.session.Session`).
    refresh:
        Optional zero-argument callable producing the next
        :class:`~repro.serve.snapshot.Snapshot` to publish (or ``None``
        when there is nothing new). Run in the event loop's default
        executor by the background loop. A refresh that raises does
        *not* stop the loop: the failure is recorded (see
        :meth:`health`), the loop backs off exponentially (capped at
        ``32 ×`` the refresh interval) and keeps going — the last-good
        snapshot keeps answering reads throughout. Only
        :meth:`refresh_once` re-raises, for callers driving refresh
        explicitly.
    refresh_interval:
        Seconds the background loop sleeps between refresh calls.
    health_hook:
        Optional zero-argument callable returning a dict merged into
        :meth:`health` — the :class:`~repro.session.Session` uses it to
        surface its dead-letter-queue depth next to the loop state.
    """

    def __init__(
        self,
        store: SnapshotStore,
        refresh: Callable[[], Snapshot | None] | None = None,
        *,
        refresh_interval: float = 0.05,
        health_hook: Callable[[], dict] | None = None,
    ) -> None:
        if refresh_interval <= 0:
            raise ServeError(
                f"refresh_interval must be > 0, got {refresh_interval}"
            )
        self.store = store
        self._refresh = refresh
        self._refresh_interval = refresh_interval
        self._health_hook = health_hook
        self._task: asyncio.Task | None = None
        self._stats = {"queries": 0, "recommends": 0, "explains": 0,
                       "refreshes": 0}
        self._consecutive_failures = 0
        self._total_failures = 0
        self._last_error: str | None = None
        self._last_success_monotonic: float | None = None
        # Scorecards are pure functions of one snapshot; memoised per
        # served version (bounded by the store's retention in practice —
        # one entry per version that ever answered a recommend).
        self._cards_by_version: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _resolve(self, version: int | None) -> Snapshot:
        return self.store.get(version)

    async def query(
        self, obj, *, version: int | None = None
    ) -> ServedAnswer:
        """The served truth for one object, tagged with its snapshot."""
        snapshot = self._resolve(version)
        self._stats["queries"] += 1
        return snapshot.answer(obj)

    async def query_value(
        self, obj, value, *, version: int | None = None
    ) -> float:
        """Posterior probability of one (object, value)."""
        snapshot = self._resolve(version)
        self._stats["queries"] += 1
        return snapshot.probability(obj, value)

    async def distribution(
        self, obj, *, version: int | None = None
    ) -> dict:
        """The full value distribution of one object."""
        snapshot = self._resolve(version)
        self._stats["queries"] += 1
        return snapshot.distribution(obj)

    async def recommend(
        self,
        k: int,
        *,
        goal: str = "truth",
        weights: ScoreWeights | None = None,
        copy_rate: float = 0.8,
        version: int | None = None,
    ) -> list:
        """Top-``k`` sources with marginal dependence penalties."""
        snapshot = self._resolve(version)
        self._stats["recommends"] += 1
        cards = self._cards_by_version.get(snapshot.version)
        if cards is None:
            cards = snapshot_scorecards(snapshot)
            if snapshot.version is not None:
                self._cards_by_version[snapshot.version] = cards
        return recommend_from_snapshot(
            snapshot,
            k,
            weights=weights,
            goal=goal,
            copy_rate=copy_rate,
            cards=cards,
        )

    async def explain_dependence(
        self,
        source,
        other=None,
        *,
        threshold: float = 0.0,
        version: int | None = None,
    ):
        """One source's dependence neighbourhood, or one pair's posterior."""
        snapshot = self._resolve(version)
        self._stats["explains"] += 1
        if other is not None:
            return {
                "source": source,
                "other": other,
                "p_dependent": snapshot.dependence_probability(source, other),
                "p_copies_other": snapshot.directed_probability(source, other),
            }
        return snapshot.explain_dependence(source, threshold=threshold)

    # ------------------------------------------------------------------
    # background refresh loop
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the background refresh loop is live."""
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Start the ingest/refresh/publish loop (needs ``refresh``)."""
        if self._refresh is None:
            raise ServeError(
                "ServingEngine has no refresh callable; construct it with "
                "refresh=... (e.g. session.publish) to run the loop"
            )
        if self.running:
            raise ServeError("refresh loop is already running")
        self._task = asyncio.get_running_loop().create_task(self._loop())

    def _record_success(self) -> None:
        self._stats["refreshes"] += 1
        self._consecutive_failures = 0
        self._last_success_monotonic = time.monotonic()

    def _record_failure(self, exc: BaseException) -> None:
        self._consecutive_failures += 1
        self._total_failures += 1
        self._last_error = f"{type(exc).__name__}: {exc}"

    async def _loop(self) -> None:
        # The serving loop must survive its refresh: one poison batch or
        # wedged executor stopping publishes silently (nothing noticed
        # until stop()) is exactly the failure mode this engine exists
        # to prevent. Failures are recorded for health(), the sleep
        # backs off exponentially while they persist, and the last-good
        # snapshot keeps serving reads the whole time.
        loop = asyncio.get_running_loop()
        while True:
            delay = self._refresh_interval
            try:
                snapshot = await loop.run_in_executor(None, self._refresh)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._record_failure(exc)
                delay *= min(32, 2 ** min(self._consecutive_failures, 5))
            else:
                self._record_success()
                if snapshot is not None and snapshot.version is None:
                    self.store.publish(snapshot)
            await asyncio.sleep(delay)

    async def refresh_once(self) -> Snapshot | None:
        """One refresh+publish cycle, awaitable (no loop required).

        Unlike the background loop this re-raises a refresh failure —
        the caller asked for this specific refresh, so they get its
        outcome — but the failure is recorded in :meth:`health` either
        way.
        """
        if self._refresh is None:
            raise ServeError("ServingEngine has no refresh callable")
        loop = asyncio.get_running_loop()
        try:
            snapshot = await loop.run_in_executor(None, self._refresh)
        except Exception as exc:
            self._record_failure(exc)
            raise
        self._record_success()
        if snapshot is not None and snapshot.version is None:
            self.store.publish(snapshot)
        return snapshot

    async def stop(self) -> None:
        """Cancel the background loop (refresh failures never kill it)."""
        task = self._task
        self._task = None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    def health(self) -> dict:
        """Loop liveness, failure counters and snapshot staleness.

        ``snapshot_staleness`` is the seconds since the last successful
        refresh (``None`` before the first); ``latest_version`` is the
        served snapshot's version (``None`` when nothing is published
        yet). A ``health_hook`` passed at construction merges its dict
        in — the session reports its quarantine depth this way.
        """
        staleness = None
        if self._last_success_monotonic is not None:
            staleness = time.monotonic() - self._last_success_monotonic
        report = {
            "running": self.running,
            "refreshes": self._stats["refreshes"],
            "consecutive_failures": self._consecutive_failures,
            "total_failures": self._total_failures,
            "last_error": self._last_error,
            "snapshot_staleness": staleness,
            "latest_version": self.store.stats().get("latest_version"),
        }
        if self._health_hook is not None:
            report.update(self._health_hook())
        return report

    def stats(self) -> dict:
        """Per-call counters plus the store's own stats."""
        return {**self._stats, "store": self.store.stats()}
