"""Snapshot persistence: columnar save, memory-mapped load, module cache.

One module owning the whole fetch/cache/stats/clear lifecycle (the
``sscofs_cache`` idiom): :func:`save_snapshot` writes a snapshot
directory — one ``.npy`` file per array plus a JSON manifest carrying
the object/source/value universes, metadata and the integrity
fingerprint — and :func:`load_snapshot` rebuilds a bitwise-identical
:class:`~repro.serve.snapshot.Snapshot`, memory-mapping the arrays by
default so a multi-process serving fleet shares one page-cache copy and
cold starts pay I/O only for the pages a query actually touches.

:func:`fetch_snapshot` adds the process-level cache (one load per
directory, hits after that), :func:`cache_stats` reports it,
:func:`clear_cache` drops it.
"""

from __future__ import annotations

import json
import os
from typing import Any

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

from repro.exceptions import ServeError
from repro.serve.snapshot import ARRAY_FIELDS, Snapshot

#: Manifest schema version; bumped on any layout change.
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"

_CACHE: dict[str, Snapshot] = {}
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _encode(item: Any) -> Any:
    """JSON-encode one object/source/value, tagging tuples like the dataset."""
    if isinstance(item, tuple):
        return {"__tuple__": [_encode(part) for part in item]}
    if item is None or isinstance(item, (str, int, float, bool)):
        return item
    raise ServeError(
        f"cannot persist identifier {item!r} of type {type(item).__name__}; "
        "snapshot persistence supports JSON scalars and tuples of them"
    )


def _decode(item: Any) -> Any:
    if isinstance(item, dict) and "__tuple__" in item:
        return tuple(_decode(part) for part in item["__tuple__"])
    return item


def save_snapshot(snapshot: Snapshot, directory: str) -> str:
    """Write the snapshot's arrays and manifest under ``directory``.

    The directory is created if needed; an existing snapshot there is
    overwritten atomically enough for single-writer use (manifest last,
    so a half-written directory fails its load loudly rather than
    serving stale arrays as fresh). Returns the manifest path.
    """
    os.makedirs(directory, exist_ok=True)
    for name in ARRAY_FIELDS:
        np.save(
            os.path.join(directory, f"{name}.npy"),
            np.ascontiguousarray(getattr(snapshot, name)),
        )
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "objects": [_encode(obj) for obj in snapshot.objects],
        "sources": [_encode(src) for src in snapshot.sources],
        "slot_values": [_encode(val) for val in snapshot.slot_values],
        "dataset_version": snapshot.dataset_version,
        "round_id": snapshot.round_id,
        "version": snapshot.version,
        "fingerprint": snapshot.fingerprint(),
    }
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_snapshot(
    directory: str, *, mmap: bool = True, verify: bool = True
) -> Snapshot:
    """Rebuild a snapshot from :func:`save_snapshot` output.

    ``mmap=True`` maps the arrays read-only (``np.load(mmap_mode="r")``)
    instead of reading them into memory. ``verify=True`` recomputes the
    fingerprint against the manifest's — a mismatch (truncated file,
    bit rot, mixed-up directories) raises
    :class:`~repro.exceptions.ServeError` instead of serving wrong
    answers. The loaded snapshot keeps the version it was saved with.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ServeError(f"cannot read snapshot manifest {path}: {exc}") from exc
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ServeError(
            f"snapshot manifest {path} has schema "
            f"{manifest.get('schema')!r}, expected {MANIFEST_SCHEMA}"
        )
    arrays = {}
    for name in ARRAY_FIELDS:
        file = os.path.join(directory, f"{name}.npy")
        try:
            arr = np.load(file, mmap_mode="r" if mmap else None)
        except (OSError, ValueError) as exc:
            raise ServeError(f"cannot load snapshot array {file}: {exc}") from exc
        if not mmap:
            arr.flags.writeable = False
        arrays[name] = arr
    snapshot = Snapshot(
        objects=tuple(_decode(obj) for obj in manifest["objects"]),
        sources=tuple(_decode(src) for src in manifest["sources"]),
        slot_values=tuple(_decode(val) for val in manifest["slot_values"]),
        arrays=arrays,
        dataset_version=manifest["dataset_version"],
        round_id=manifest["round_id"],
        version=manifest["version"],
    )
    if verify and snapshot.fingerprint() != manifest["fingerprint"]:
        raise ServeError(
            f"snapshot at {directory} fails its integrity fingerprint "
            f"({snapshot.fingerprint()[:12]}… != "
            f"{manifest['fingerprint'][:12]}…); refusing to serve it"
        )
    return snapshot


def fetch_snapshot(directory: str, *, mmap: bool = True) -> Snapshot:
    """Cached :func:`load_snapshot`: one load per directory per process."""
    key = os.path.abspath(directory)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    snapshot = load_snapshot(directory, mmap=mmap)
    _CACHE[key] = snapshot
    return snapshot


def cache_stats() -> dict:
    """Hit/miss/eviction counters plus the resident entry count."""
    return {**_CACHE_STATS, "resident": len(_CACHE)}


def clear_cache() -> int:
    """Drop every cached snapshot; returns how many were resident."""
    dropped = len(_CACHE)
    _CACHE_STATS["evictions"] += dropped
    _CACHE.clear()
    return dropped
