"""Online serving: versioned snapshots, lock-free reads, async front-end.

The application layer's production shape (ROADMAP item 2): each
completed truth round publishes an immutable
:class:`~repro.serve.snapshot.Snapshot` into a
:class:`~repro.serve.store.SnapshotStore` (latest-wins atomic swap,
pinned-version reads, bounded retention), readers answer queries
lock-free against whichever snapshot they resolved, and the asyncio
:class:`~repro.serve.engine.ServingEngine` runs the background
ingest/refresh/publish loop concurrently with the read traffic.
:mod:`repro.serve.persist` makes snapshots durable (columnar save,
memory-mapped load).
"""

from repro.serve.engine import ServingEngine
from repro.serve.persist import (
    cache_stats,
    clear_cache,
    fetch_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.serve.snapshot import ServedAnswer, Snapshot
from repro.serve.store import SnapshotStore

__all__ = [
    "ServedAnswer",
    "ServingEngine",
    "Snapshot",
    "SnapshotStore",
    "cache_stats",
    "clear_cache",
    "fetch_snapshot",
    "load_snapshot",
    "save_snapshot",
]
