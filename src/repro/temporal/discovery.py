"""Temporal truth discovery: timelines + current truth + value status.

Ties the temporal pieces together, the way section 3.2's temporal sketch
prescribes: iterate lifespan inference, temporal dependence discovery,
and (dependence-discounted) interval voting. The result knows, for every
source's current value, whether it is *current*, *outdated* or *false* —
Example 3.2's refinement over the snapshot reading of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.claims import ValuePeriod
from repro.core.params import TemporalParams
from repro.core.temporal_dataset import TemporalDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.graph import DependenceGraph
from repro.dependence.temporal import discover_temporal_dependence
from repro.exceptions import DataError
from repro.temporal.lifespan import (
    exactness_from_timelines,
    infer_timelines,
    interval_vote_timeline,
    value_status,
)
from repro.temporal.quality import SourceQuality, assess_quality


@dataclass
class TemporalTruthResult:
    """Output of temporal truth discovery."""

    timelines: dict[ObjectId, list[ValuePeriod]]
    current_truth: dict[ObjectId, Value]
    exactness: dict[SourceId, float]
    quality: dict[SourceId, SourceQuality]
    dependence: DependenceGraph
    statuses: dict[tuple[SourceId, ObjectId], str] = field(default_factory=dict)

    def status_counts(self, source: SourceId) -> dict[str, int]:
        """How many of a source's current values are current/outdated/false."""
        counts = {"current": 0, "outdated": 0, "false": 0}
        for (s, _), status in self.statuses.items():
            if s == source:
                counts[status] += 1
        return counts


class TemporalTruthDiscovery:
    """Copy-aware temporal truth discovery.

    With ``aware=False`` the dependence step is skipped (interval voting
    without discounts) — the temporal naive baseline.
    """

    def __init__(
        self,
        params: TemporalParams | None = None,
        rounds: int = 2,
        aware: bool = True,
        min_co_adoptions: int = 1,
    ) -> None:
        if rounds < 1:
            raise DataError(f"rounds must be >= 1, got {rounds}")
        self.params = params or TemporalParams()
        self.rounds = rounds
        self.aware = aware
        self.min_co_adoptions = min_co_adoptions

    def discover(self, dataset: TemporalDataset) -> TemporalTruthResult:
        """Run the iterative temporal pipeline on a temporal dataset."""
        if len(dataset) == 0:
            raise DataError("temporal dataset is empty")

        timelines, exactness = infer_timelines(dataset)
        dependence = DependenceGraph()
        for _ in range(self.rounds if self.aware else 0):
            dependence = discover_temporal_dependence(
                dataset,
                self.params,
                timelines=timelines,
                exactness=exactness,
                min_co_adoptions=self.min_co_adoptions,
            )
            weights = {s: max(0.1, e) for s, e in exactness.items()}
            timelines = {
                obj: interval_vote_timeline(
                    dataset,
                    obj,
                    weights,
                    dependence,
                    self.params.copy_rate,
                    recency_half_life=self.params.max_copy_lag,
                )
                for obj in dataset.objects
            }
            exactness = exactness_from_timelines(dataset, timelines)

        end = dataset.time_span()[1]
        current_truth = {
            obj: periods[-1].value for obj, periods in timelines.items()
        }
        statuses: dict[tuple[SourceId, ObjectId], str] = {}
        for source in dataset.sources:
            for obj in dataset.objects_of(source):
                value = dataset.value_at(source, obj, end)
                if value is None:
                    continue
                statuses[(source, obj)] = value_status(
                    timelines, obj, value, end
                )
        quality = assess_quality(dataset, timelines)
        return TemporalTruthResult(
            timelines=timelines,
            current_truth=current_truth,
            exactness=exactness,
            quality=quality,
            dependence=dependence,
            statuses=statuses,
        )
