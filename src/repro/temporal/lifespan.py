"""Lifespan inference: what was true, when (the temporal truth substrate).

The temporal setting's key refinement (Example 3.2): with update
histories, a value that disagrees with the present truth may be
*out-of-date* rather than *false* — "the availability of temporal
information lets us infer that both S2 and S3 only provide out-of-date
information, not false information."

To make that call one needs per-object *timelines* of the true value.
This module infers them by **interval voting**:

1. collect every update time of any source for the object — these
   partition time into intervals;
2. within each interval every source asserts one value (its latest
   update); run an (optionally weighted, optionally
   dependence-discounted) vote;
3. merge adjacent intervals with the same winner into
   :class:`~repro.core.claims.ValuePeriod` runs.

Like snapshot truth discovery, the weights (source exactness) depend on
the timelines, so :func:`infer_timelines` iterates the two steps.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.claims import ValuePeriod
from repro.core.temporal_dataset import TemporalDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError


def interval_vote_timeline(
    dataset: TemporalDataset,
    obj: ObjectId,
    weights: Mapping[SourceId, float] | None = None,
    dependence: DependenceGraph | None = None,
    copy_rate: float = 0.8,
    recency_half_life: float | None = 5.0,
) -> list[ValuePeriod]:
    """Infer one object's timeline by interval voting.

    ``weights`` are per-source vote weights (typically exactness
    estimates); with ``dependence`` given, each source's weight is
    additionally discounted by the probability its value is copied from
    an already-counted source asserting the same value — the temporal
    analogue of the DEPEN vote discount.

    ``recency_half_life`` implements freshness: a vote's weight halves
    for every half-life its assertion lags behind the interval being
    decided, so a stale (possibly out-of-date) assertion cannot outvote
    fresh ones — this is what lets S1's 2007 values win the final
    intervals of Table 3 against two stale-but-once-true votes. Pass
    ``None`` to disable.
    """
    if recency_half_life is not None and recency_half_life <= 0:
        raise DataError(
            f"recency_half_life must be > 0 or None, got {recency_half_life}"
        )
    sources = [s for s in dataset.sources if dataset.history(s, obj)]
    if not sources:
        raise DataError(f"no source ever asserted a value for {obj!r}")

    boundaries = sorted(
        {time for s in sources for time, _ in dataset.history(s, obj)}
    )
    winners: list[tuple[float, Value]] = []
    for start in boundaries:
        votes: dict[Value, list[tuple[SourceId, float]]] = {}
        for source in sources:
            value = dataset.value_at(source, obj, start)
            if value is None:
                continue
            asserted_at = max(
                time
                for time, v in dataset.history(source, obj)
                if time <= start
            )
            votes.setdefault(value, []).append((source, asserted_at))
        counts: dict[Value, float] = {}
        for value, providers in votes.items():
            ordered = sorted(
                providers,
                key=lambda sa: (-(weights or {}).get(sa[0], 1.0), sa[0]),
            )
            total = 0.0
            counted: list[SourceId] = []
            for source, asserted_at in ordered:
                weight = 1.0 if weights is None else weights.get(source, 1.0)
                if recency_half_life is not None:
                    age = max(0.0, start - asserted_at)
                    weight *= 0.5 ** (age / recency_half_life)
                if dependence is not None:
                    weight *= dependence.independence_weight(
                        source, counted, copy_rate
                    )
                total += weight
                counted.append(source)
            counts[value] = total
        winners.append(
            (start, max(counts, key=lambda v: (counts[v], repr(v))))
        )

    periods: list[ValuePeriod] = []
    for i, (start, value) in enumerate(winners):
        if periods and periods[-1].value == value:
            continue
        end = None
        for later_start, later_value in winners[i + 1 :]:
            if later_value != value:
                end = later_start
                break
        if periods:
            periods[-1] = ValuePeriod(
                periods[-1].value, periods[-1].start, start
            )
        periods.append(ValuePeriod(value, start, end))
    return periods


def exactness_from_timelines(
    dataset: TemporalDataset,
    timelines: Mapping[ObjectId, list[ValuePeriod]],
) -> dict[SourceId, float]:
    """Fraction of each source's assertions that were true *while held*.

    An assertion of ``v`` at time ``t`` is held until the source's next
    update for the object; it is exact if the timeline has ``v`` true at
    some point of that holding interval. The overlap (rather than
    instant-of-assertion) test matters with *inferred* timelines: the
    consensus flips to a new value only after a second source confirms
    it, so the freshest source's assertions briefly precede their
    inferred period — still exact. Stale re-assertions of an expired
    value, and values never true at all, fail the overlap and score 0.
    """
    exact: dict[SourceId, int] = {}
    total: dict[SourceId, int] = {}
    next_update: dict[tuple[SourceId, ObjectId], list[float]] = {}
    for event in dataset.update_events():
        next_update.setdefault((event.source, event.object), []).append(
            event.time
        )
    for event in dataset.update_events():
        periods = timelines.get(event.object)
        if periods is None:
            continue
        total[event.source] = total.get(event.source, 0) + 1
        times = next_update[(event.source, event.object)]
        later = [t for t in times if t > event.time]
        hold_end = min(later) if later else None
        for period in periods:
            if period.value != event.value:
                continue
            starts_before_hold_ends = (
                hold_end is None or period.start < hold_end
            )
            ends_after_hold_starts = (
                period.end is None or period.end > event.time
            )
            if starts_before_hold_ends and ends_after_hold_starts:
                exact[event.source] = exact.get(event.source, 0) + 1
                break
    return {
        source: exact.get(source, 0) / count
        for source, count in total.items()
    }


def infer_timelines(
    dataset: TemporalDataset,
    rounds: int = 3,
    dependence: DependenceGraph | None = None,
    copy_rate: float = 0.8,
    recency_half_life: float | None = 5.0,
) -> tuple[dict[ObjectId, list[ValuePeriod]], dict[SourceId, float]]:
    """Iterate interval voting and exactness estimation to a fixpoint.

    Returns the final timelines and exactness estimates. ``rounds`` caps
    the iteration; the loop exits early once the timelines stop changing.
    """
    if rounds < 1:
        raise DataError(f"rounds must be >= 1, got {rounds}")
    weights: dict[SourceId, float] | None = None
    timelines: dict[ObjectId, list[ValuePeriod]] = {}
    exactness: dict[SourceId, float] = {}
    for _ in range(rounds):
        new_timelines = {
            obj: interval_vote_timeline(
                dataset, obj, weights, dependence, copy_rate, recency_half_life
            )
            for obj in dataset.objects
        }
        exactness = exactness_from_timelines(dataset, new_timelines)
        if new_timelines == timelines:
            break
        timelines = new_timelines
        # Give exactness a floor so one bad round cannot silence a source.
        weights = {s: max(0.1, e) for s, e in exactness.items()}
    return timelines, exactness


def value_status(
    timelines: Mapping[ObjectId, list[ValuePeriod]],
    obj: ObjectId,
    value: Value,
    at: float,
) -> str:
    """Classify a value at a point in time: ``current``/``outdated``/``false``.

    This is the three-way distinction Example 3.2 turns on: ``current``
    (true now), ``outdated`` (was true during an earlier period), or
    ``false`` (never true).
    """
    periods = timelines.get(obj)
    if not periods:
        raise DataError(f"no timeline inferred for object {obj!r}")
    for period in periods:
        if period.contains(at) and period.value == value:
            return "current"
    if any(period.value == value and period.start <= at for period in periods):
        return "outdated"
    return "false"
