"""Temporal reasoning: lifespans, source quality, temporal truth discovery."""

from repro.temporal.discovery import TemporalTruthDiscovery, TemporalTruthResult
from repro.temporal.lifespan import (
    exactness_from_timelines,
    infer_timelines,
    interval_vote_timeline,
    value_status,
)
from repro.temporal.quality import SourceQuality, assess_quality, capture_lag

__all__ = [
    "SourceQuality",
    "TemporalTruthDiscovery",
    "TemporalTruthResult",
    "assess_quality",
    "capture_lag",
    "exactness_from_timelines",
    "infer_timelines",
    "interval_vote_timeline",
    "value_status",
]
