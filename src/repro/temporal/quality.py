"""Per-source temporal quality: coverage, exactness, freshness.

Section 4's source-recommendation discussion lists "accuracy, coverage,
freshness of provided data" as the measures a recommender combines.
For temporal sources these have natural definitions against inferred
(or ground-truth) timelines:

* **coverage** — of all (object, true-period) pairs, the fraction the
  source captured, i.e. asserted that period's value while it was true;
* **exactness** — of the source's assertions, the fraction true at the
  moment they were made (a lazy copier's stale assertions fail this);
* **freshness** — among captured periods, how quickly after the start of
  the period the source picked the value up (mean lag, plus a
  "within Δ" rate).

All three are bundled in :class:`SourceQuality` and computed by
:func:`assess_quality`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.claims import ValuePeriod
from repro.core.temporal_dataset import TemporalDataset
from repro.core.types import ObjectId, SourceId
from repro.exceptions import DataError
from repro.temporal.lifespan import exactness_from_timelines


@dataclass(frozen=True, slots=True)
class SourceQuality:
    """Temporal quality profile of one source."""

    source: SourceId
    coverage: float
    exactness: float
    mean_lag: float | None
    captured_periods: int
    total_periods: int

    def freshness_score(self, half_life: float = 1.0) -> float:
        """Freshness mapped to (0, 1]: 1 = instant pickup, halves per ``half_life``.

        Sources that captured nothing get 0.0 — there is no lag evidence
        at all, and an uncovered source is the opposite of fresh.
        """
        if half_life <= 0:
            raise DataError(f"half_life must be > 0, got {half_life}")
        if self.mean_lag is None:
            return 0.0
        return 0.5 ** (self.mean_lag / half_life)


def capture_lag(
    dataset: TemporalDataset,
    source: SourceId,
    obj: ObjectId,
    period: ValuePeriod,
) -> float | None:
    """Lag between a true period's start and the source adopting its value.

    Returns ``None`` if the source never asserted the period's value
    during the period (it missed it entirely, or only asserted the value
    at other times). Early adoptions count as instant (lag 0) — use
    :func:`capture_lag_signed` to keep the negative part.
    """
    lag = capture_lag_signed(dataset, source, obj, period)
    return None if lag is None else max(0.0, lag)


def capture_lag_signed(
    dataset: TemporalDataset,
    source: SourceId,
    obj: ObjectId,
    period: ValuePeriod,
) -> float | None:
    """Signed capture lag: negative when the source adopted the value early.

    Against *inferred* timelines a period starts only when the consensus
    flips, typically after the freshest source already switched — that
    source's lag is genuinely negative, and freshness comparisons (the
    Mann–Whitney profile in temporal dependence discovery) need the
    sign preserved rather than clamped to zero.
    """
    # If the source already asserts the value when the period starts,
    # its adoption moment is the assertion that established the standing
    # value — possibly well before the period.
    if dataset.value_at(source, obj, period.start) == period.value:
        established = max(
            (
                time
                for time, value in dataset.history(source, obj)
                if time <= period.start and value == period.value
            ),
            default=None,
        )
        if established is not None:
            return established - period.start
        return 0.0
    for time, value in dataset.history(source, obj):
        if value == period.value and period.contains(time):
            return time - period.start
    return None


def assess_quality(
    dataset: TemporalDataset,
    timelines: Mapping[ObjectId, list[ValuePeriod]],
) -> dict[SourceId, SourceQuality]:
    """Compute the full quality profile of every source against timelines."""
    if not timelines:
        raise DataError("no timelines given")
    exactness = exactness_from_timelines(dataset, timelines)
    profiles: dict[SourceId, SourceQuality] = {}
    for source in dataset.sources:
        covered_objects = dataset.objects_of(source)
        total = 0
        captured = 0
        lags: list[float] = []
        for obj, periods in timelines.items():
            if obj not in covered_objects:
                continue
            for period in periods:
                total += 1
                lag = capture_lag(dataset, source, obj, period)
                if lag is not None:
                    captured += 1
                    lags.append(max(0.0, lag))
        profiles[source] = SourceQuality(
            source=source,
            coverage=captured / total if total else 0.0,
            exactness=exactness.get(source, 0.0),
            mean_lag=sum(lags) / len(lags) if lags else None,
            captured_periods=captured,
            total_periods=total,
        )
    return profiles
