"""repro — source-dependence discovery and copy-aware truth discovery.

A from-scratch reproduction of *"Sailing the Information Ocean with
Awareness of Currents: Discovery and Application of Source Dependence"*
(Berti-Équille, Das Sarma, Dong, Marian, Srivastava — CIDR 2009).

The package is organised by the paper's structure:

``repro.core``
    Claims, datasets (snapshot and temporal), ground-truth worlds,
    model parameters.
``repro.truth``
    Truth discovery: naive voting, ACCU, TruthFinder, and the
    copy-aware DEPEN algorithm.
``repro.dependence``
    Dependence discovery: snapshot Bayes, partial-copier accuracy
    splits, rater (dis)similarity dependence, temporal copy detection.
``repro.temporal``
    Lifespan inference, source quality (coverage/exactness/freshness),
    temporal truth discovery.
``repro.opinions``
    Rating matrices, dependence-aware consensus, opinion pooling.
``repro.linkage``
    String similarity, author-list handling, representation clustering,
    joint linkage + truth discovery.
``repro.fusion`` / ``repro.query`` / ``repro.recommend``
    The application layers of section 4: data fusion, online query
    answering with source ordering, source recommendation.
``repro.generators``
    Synthetic worlds: copier networks, rating worlds, temporal worlds,
    and the AbeBooks-scale bookstore catalog.
``repro.serve``
    The online serving layer: immutable versioned snapshots of each
    truth round, a lock-free snapshot store, snapshot persistence, and
    the asyncio serving front-end.
``repro.eval`` / ``repro.datasets``
    Metrics, the experiment harness, and the paper's worked examples
    (Tables 1-3) as data.

The stable entry point is :class:`Session` — one object owning the
ingest → discover → run_truth → publish → query/recommend lifecycle,
with execution policy (``truth_backend``, ``posterior_backend``,
``parallel_backend``, ``entry_store``, …) accepted once at
construction. The layer modules stay importable for direct use; the
top-level convenience aliases that encouraged hand-stitching the
pipeline are deprecated in favour of the session.
"""

import warnings

from repro.core import (
    ABSENT,
    Claim,
    ClaimDataset,
    DependenceEdge,
    DependenceKind,
    DependenceParams,
    IterationParams,
    Mutation,
    MutationBatch,
    MutationDelta,
    OpinionParams,
    Rating,
    TemporalClaim,
    TemporalDataset,
    TemporalParams,
    TemporalWorld,
    World,
)
from repro.dependence import (
    DependenceGraph,
    StreamingDependenceEngine,
    StreamingTemporalDataset,
)
from repro.serve import ServedAnswer, ServingEngine, Snapshot, SnapshotStore
from repro.session import Session
from repro.truth import Accu, Depen, NaiveVote, TruthFinder, TruthResult

__version__ = "0.2.0"

__all__ = [
    "ABSENT",
    "Accu",
    "Claim",
    "ClaimDataset",
    "Depen",
    "DependenceEdge",
    "DependenceGraph",
    "DependenceKind",
    "DependenceParams",
    "IngestDelta",
    "IterationParams",
    "Mutation",
    "MutationBatch",
    "MutationDelta",
    "NaiveVote",
    "OpinionParams",
    "Rating",
    "ServedAnswer",
    "ServingEngine",
    "Session",
    "Snapshot",
    "SnapshotStore",
    "StreamingDependenceEngine",
    "StreamingTemporalDataset",
    "TemporalClaim",
    "TemporalDataset",
    "TemporalParams",
    "TemporalWorld",
    "TruthFinder",
    "TruthResult",
    "World",
    "__version__",
    "discover_dependence",
]

#: Deprecated top-level aliases, served lazily with a warning. The
#: functions themselves are not deprecated — import them from their
#: layer module (``repro.dependence``) or, better, use the
#: :class:`Session` lifecycle that wires the layers correctly.
_DEPRECATED_ALIASES = {
    "discover_dependence": (
        "repro.dependence",
        "discover_dependence",
        "Session.discover() (or repro.dependence.discover_dependence)",
    ),
    # Pre-mutation-algebra name of the ingest return type: every ingest
    # is now one (possibly mixed) MutationBatch, so the delta it reports
    # is a MutationDelta. The old name stays importable from
    # repro.core.dataset without a warning for pinned code.
    "IngestDelta": (
        "repro.core.dataset",
        "IngestDelta",
        "MutationDelta (the same type under its mutation-algebra name)",
    ),
}


def __getattr__(name: str):
    alias = _DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr, replacement = alias
    warnings.warn(
        f"repro.{name} is deprecated as a top-level alias; use "
        f"{replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)
