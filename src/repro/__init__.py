"""repro — source-dependence discovery and copy-aware truth discovery.

A from-scratch reproduction of *"Sailing the Information Ocean with
Awareness of Currents: Discovery and Application of Source Dependence"*
(Berti-Équille, Das Sarma, Dong, Marian, Srivastava — CIDR 2009).

The package is organised by the paper's structure:

``repro.core``
    Claims, datasets (snapshot and temporal), ground-truth worlds,
    model parameters.
``repro.truth``
    Truth discovery: naive voting, ACCU, TruthFinder, and the
    copy-aware DEPEN algorithm.
``repro.dependence``
    Dependence discovery: snapshot Bayes, partial-copier accuracy
    splits, rater (dis)similarity dependence, temporal copy detection.
``repro.temporal``
    Lifespan inference, source quality (coverage/exactness/freshness),
    temporal truth discovery.
``repro.opinions``
    Rating matrices, dependence-aware consensus, opinion pooling.
``repro.linkage``
    String similarity, author-list handling, representation clustering,
    joint linkage + truth discovery.
``repro.fusion`` / ``repro.query`` / ``repro.recommend``
    The application layers of section 4: data fusion, online query
    answering with source ordering, source recommendation.
``repro.generators``
    Synthetic worlds: copier networks, rating worlds, temporal worlds,
    and the AbeBooks-scale bookstore catalog.
``repro.eval`` / ``repro.datasets``
    Metrics, the experiment harness, and the paper's worked examples
    (Tables 1-3) as data.
"""

from repro.core import (
    Claim,
    ClaimDataset,
    DependenceEdge,
    DependenceKind,
    DependenceParams,
    IterationParams,
    OpinionParams,
    Rating,
    TemporalClaim,
    TemporalDataset,
    TemporalParams,
    TemporalWorld,
    World,
)
from repro.dependence import (
    DependenceGraph,
    StreamingDependenceEngine,
    discover_dependence,
)
from repro.truth import Accu, Depen, NaiveVote, TruthFinder, TruthResult

__version__ = "0.1.0"

__all__ = [
    "Accu",
    "Claim",
    "ClaimDataset",
    "Depen",
    "DependenceEdge",
    "DependenceGraph",
    "DependenceKind",
    "DependenceParams",
    "IterationParams",
    "NaiveVote",
    "OpinionParams",
    "Rating",
    "StreamingDependenceEngine",
    "TemporalClaim",
    "TemporalDataset",
    "TemporalParams",
    "TemporalWorld",
    "TruthFinder",
    "TruthResult",
    "World",
    "__version__",
    "discover_dependence",
]
